"""Text formats for sequence databases (system S19).

Three formats are supported:

* **SPMF** — the de-facto interchange format of sequential pattern mining
  tools: items are space-separated integers, ``-1`` ends a transaction
  and ``-2`` ends a customer sequence, one customer per line.
* **paper** — the notation of the paper's tables, one customer per line:
  ``(a, e, g)(b)(h)``.
* **transaction log** — CSV rows ``customer_id,timestamp,item``; rows are
  grouped per customer, ordered by timestamp, and equal timestamps merge
  into one itemset.  This is the raw shape of the marketing data the
  paper's introduction motivates.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Hashable, TextIO

from repro.core.sequence import format_seq, parse
from repro.db.database import SequenceDatabase
from repro.exceptions import DataFormatError


# -- SPMF ---------------------------------------------------------------------

def write_spmf(db: SequenceDatabase, target: str | Path | TextIO) -> None:
    """Write *db* in SPMF format."""
    def emit(handle: TextIO) -> None:
        for seq in db:
            parts: list[str] = []
            for txn in seq:
                parts.extend(str(item) for item in txn)
                parts.append("-1")
            parts.append("-2")
            handle.write(" ".join(parts) + "\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            emit(handle)
    else:
        emit(target)


def read_spmf(source: str | Path | TextIO) -> SequenceDatabase:
    """Read an SPMF-format file into a database."""
    def consume(handle: TextIO) -> SequenceDatabase:
        sequences = []
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            sequences.append(_parse_spmf_line(line, lineno))
        return SequenceDatabase.from_raw(sequences)

    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return consume(handle)
    return consume(source)


def _parse_spmf_line(line: str, lineno: int) -> list[list[int]]:
    itemsets: list[list[int]] = []
    current: list[int] = []
    tokens = line.split()
    for token in tokens:
        try:
            value = int(token)
        except ValueError:
            raise DataFormatError(f"line {lineno}: bad token {token!r}") from None
        if value == -2:
            break
        if value == -1:
            if not current:
                raise DataFormatError(f"line {lineno}: empty itemset")
            itemsets.append(current)
            current = []
        elif value <= 0:
            raise DataFormatError(f"line {lineno}: non-positive item {value}")
        else:
            current.append(value)
    else:
        raise DataFormatError(f"line {lineno}: missing -2 terminator")
    if current:
        raise DataFormatError(f"line {lineno}: itemset not closed by -1")
    if not itemsets:
        raise DataFormatError(f"line {lineno}: empty customer sequence")
    return itemsets


# -- paper notation ------------------------------------------------------------

def write_paper(db: SequenceDatabase, target: str | Path | TextIO) -> None:
    """Write *db* one ``<(a, b)(c)>`` line per customer."""
    def emit(handle: TextIO) -> None:
        for seq in db:
            handle.write(format_seq(seq) + "\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            emit(handle)
    else:
        emit(target)


def read_paper(source: str | Path | TextIO) -> SequenceDatabase:
    """Read a file of ``(a, b)(c)`` lines into a database."""
    def consume(handle: TextIO) -> SequenceDatabase:
        sequences = []
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            sequences.append(parse(line))
        return SequenceDatabase(sequences)

    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return consume(handle)
    return consume(source)


# -- transaction logs -----------------------------------------------------------

def read_transaction_log(
    source: str | Path | TextIO,
    has_header: bool = True,
) -> SequenceDatabase:
    """Read a ``customer_id,timestamp,item`` CSV into a database.

    Rows are grouped by customer id, ordered by timestamp within each
    customer, and items sharing a timestamp merge into one itemset —
    exactly the customer-sequence construction of [1] that Section 1
    recalls.  Customers appear in first-seen order.
    """
    def consume(handle: TextIO) -> SequenceDatabase:
        rows = csv.reader(handle)
        if has_header:
            next(rows, None)
        per_customer: dict[str, dict[str, set[Hashable]]] = {}
        order: list[str] = []
        for lineno, row in enumerate(rows, start=2 if has_header else 1):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) < 3:
                raise DataFormatError(f"row {lineno}: expected cid,timestamp,item")
            cid, timestamp, item = row[0].strip(), row[1].strip(), row[2].strip()
            if cid not in per_customer:
                per_customer[cid] = {}
                order.append(cid)
            per_customer[cid].setdefault(timestamp, set()).add(item)
        customers = []
        for cid in order:
            by_time = per_customer[cid]
            customers.append(
                [sorted(by_time[ts]) for ts in sorted(by_time)]
            )
        return SequenceDatabase.from_itemsets(customers)

    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return consume(handle)
    return consume(source)


def read_timed_transaction_log(
    source: str | Path | TextIO,
    has_header: bool = True,
):
    """Read a ``customer_id,timestamp,item`` CSV keeping numeric times.

    Returns ``(timed_sequences, vocabulary)`` where each element of the
    list is a :class:`repro.ext.time_constraints.TimedSequence` whose
    timestamps are the parsed numeric times — ready for GSP-style
    windows and gaps measured in real time units.  Timestamps must be
    numeric (int or float literals).
    """
    from repro.db.vocabulary import Vocabulary
    from repro.ext.time_constraints import TimedSequence

    def consume(handle: TextIO):
        rows = csv.reader(handle)
        if has_header:
            next(rows, None)
        per_customer: dict[str, dict[float, set[str]]] = {}
        order: list[str] = []
        for lineno, row in enumerate(rows, start=2 if has_header else 1):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) < 3:
                raise DataFormatError(f"row {lineno}: expected cid,timestamp,item")
            cid, raw_time, item = row[0].strip(), row[1].strip(), row[2].strip()
            try:
                timestamp = float(raw_time)
            except ValueError:
                raise DataFormatError(
                    f"row {lineno}: non-numeric timestamp {raw_time!r}"
                ) from None
            if cid not in per_customer:
                per_customer[cid] = {}
                order.append(cid)
            per_customer[cid].setdefault(timestamp, set()).add(item)
        vocab = Vocabulary.from_items(
            item
            for by_time in per_customer.values()
            for items in by_time.values()
            for item in items
        )
        timed = []
        for cid in order:
            by_time = per_customer[cid]
            times = tuple(sorted(by_time))
            raw = tuple(
                tuple(sorted(vocab.id_of(item) for item in by_time[ts]))
                for ts in times
            )
            timed.append(TimedSequence(raw, times))
        return timed, vocab

    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return consume(handle)
    return consume(source)


def roundtrip_equal(db: SequenceDatabase, fmt: str = "spmf") -> bool:
    """Write then re-read *db* in memory; True when identical (test aid)."""
    import io

    buffer = io.StringIO()
    if fmt == "spmf":
        write_spmf(db, buffer)
        buffer.seek(0)
        return read_spmf(buffer) == db
    if fmt == "paper":
        write_paper(db, buffer)
        buffer.seek(0)
        return read_paper(buffer) == db
    raise DataFormatError(f"unknown format {fmt!r}")
