"""Database sampling utilities (system S19).

Large-database workflows routinely mine a customer sample first to
calibrate thresholds before paying for the full run.  This module
provides deterministic customer sampling, train/test splitting, and a
support estimator with a binomial confidence interval (normal
approximation) so a sampled support can be read with error bars.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.sequence import RawSequence, contains
from repro.db.database import SequenceDatabase
from repro.exceptions import InvalidParameterError


def sample_customers(
    db: SequenceDatabase, fraction: float, seed: int = 0
) -> SequenceDatabase:
    """A deterministic customer sample of ceil(fraction * |db|) sequences.

    Sampling is without replacement and preserves the original CID
    order among the chosen customers.  The vocabulary is shared.
    """
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(f"fraction must be in (0, 1], got {fraction}")
    size = max(1, math.ceil(fraction * len(db)))
    rng = random.Random(seed)
    chosen = sorted(rng.sample(range(len(db)), size))
    return SequenceDatabase(
        (db.sequences[index] for index in chosen), db.vocabulary
    )


def split_customers(
    db: SequenceDatabase, train_fraction: float = 0.8, seed: int = 0
) -> tuple[SequenceDatabase, SequenceDatabase]:
    """Deterministic train/test split over customers.

    Both sides preserve original order and share the vocabulary; every
    customer lands on exactly one side.
    """
    if not 0.0 < train_fraction < 1.0:
        raise InvalidParameterError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    rng = random.Random(seed)
    indices = list(range(len(db)))
    rng.shuffle(indices)
    cut = max(1, min(len(db) - 1, round(train_fraction * len(db))))
    train = sorted(indices[:cut])
    test = sorted(indices[cut:])
    return (
        SequenceDatabase((db.sequences[i] for i in train), db.vocabulary),
        SequenceDatabase((db.sequences[i] for i in test), db.vocabulary),
    )


@dataclass(frozen=True, slots=True)
class SupportEstimate:
    """A sampled support fraction with a confidence interval."""

    fraction: float
    low: float
    high: float
    sample_size: int

    def count_in(self, database_size: int) -> float:
        """Extrapolated support count in a database of the given size."""
        return self.fraction * database_size


def estimate_support(
    db: SequenceDatabase,
    pattern: RawSequence,
    fraction: float,
    seed: int = 0,
    confidence: float = 0.95,
) -> SupportEstimate:
    """Estimate a pattern's support fraction from a customer sample.

    Uses the normal approximation to the binomial proportion; the
    interval is clipped to [0, 1].  With ``fraction=1.0`` the estimate
    is exact and the interval collapses.
    """
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    sample = sample_customers(db, fraction, seed)
    hits = sum(1 for seq in sample if contains(seq, pattern))
    n = len(sample)
    p = hits / n
    if n == len(db):
        return SupportEstimate(p, p, p, n)
    z = _normal_quantile(0.5 + confidence / 2.0)
    margin = z * math.sqrt(max(p * (1.0 - p), 1e-12) / n)
    return SupportEstimate(
        fraction=p,
        low=max(0.0, p - margin),
        high=min(1.0, p + margin),
        sample_size=n,
    )


def _normal_quantile(prob: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < prob < 1.0:
        raise InvalidParameterError(f"probability must be in (0, 1), got {prob}")
    # Coefficients for the central region.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if prob < p_low:
        q = math.sqrt(-2 * math.log(prob))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if prob > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - prob))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = prob - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )
