"""Item vocabulary: mapping between user items and internal integer ids.

The mining code works on integer items because the comparative order
(Section 2) needs a total order on items.  A :class:`Vocabulary` assigns
ids 1..n; by default ids follow the natural sort order of the original
items so that the paper's "alphabetical order" survives the mapping, with
insertion order as the fallback for unsortable mixtures.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, cast

from repro.exceptions import InvalidDatabaseError


class Vocabulary:
    """Bidirectional item <-> id map with ids 1..n."""

    __slots__ = ("_to_id", "_to_item")

    def __init__(self) -> None:
        self._to_id: dict[Hashable, int] = {}
        self._to_item: list[Hashable] = []

    @classmethod
    def from_items(cls, items: Iterable[Hashable], sort: bool = True) -> "Vocabulary":
        """Build a vocabulary from distinct items.

        With ``sort=True`` (default) ids follow the items' natural order;
        unsortable mixtures fall back to first-appearance order.
        """
        vocab = cls()
        distinct = list(dict.fromkeys(items))
        if sort:
            try:
                # Hashable alone does not promise an order; the cast keeps
                # the optimistic sort, the except keeps the fallback.
                cast("list[Any]", distinct).sort()
            except TypeError:
                pass
        for item in distinct:
            vocab.add(item)
        return vocab

    def add(self, item: Hashable) -> int:
        """Register *item* (idempotent); returns its id."""
        existing = self._to_id.get(item)
        if existing is not None:
            return existing
        new_id = len(self._to_item) + 1
        self._to_id[item] = new_id
        self._to_item.append(item)
        return new_id

    def id_of(self, item: Hashable) -> int:
        """Id of a registered item; raises on unknown items."""
        try:
            return self._to_id[item]
        except KeyError:
            raise InvalidDatabaseError(f"unknown item {item!r}") from None

    def item_of(self, item_id: int) -> Hashable:
        """Original item for an id; raises on out-of-range ids."""
        if not 1 <= item_id <= len(self._to_item):
            raise InvalidDatabaseError(f"unknown item id {item_id}")
        return self._to_item[item_id - 1]

    def __len__(self) -> int:
        return len(self._to_item)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._to_id

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._to_item)

    def encode(self, itemsets: Iterable[Iterable[Hashable]]) -> tuple[tuple[int, ...], ...]:
        """Encode one customer sequence of user items into raw form."""
        return tuple(
            tuple(sorted(self.id_of(item) for item in set(itemset)))
            for itemset in itemsets
        )

    def decode(self, raw: Iterable[Iterable[int]]) -> list[list[Hashable]]:
        """Decode a raw sequence back to user items."""
        return [[self.item_of(i) for i in txn] for txn in raw]
