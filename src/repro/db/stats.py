"""Database statistics (the knobs the paper's evaluation varies)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.sequence import RawSequence, seq_length


@dataclass(frozen=True, slots=True)
class DatabaseStats:
    """Summary statistics of a sequence database.

    ``avg_transactions`` is the paper's theta (average number of
    transactions per customer sequence, Section 4.3) and
    ``avg_items_per_transaction`` its tlen.
    """

    num_sequences: int
    num_distinct_items: int
    total_items: int
    total_transactions: int
    max_length: int

    @property
    def avg_transactions(self) -> float:
        """Average transactions per customer sequence (theta / slen)."""
        if self.num_sequences == 0:
            return 0.0
        return self.total_transactions / self.num_sequences

    @property
    def avg_items_per_transaction(self) -> float:
        """Average itemset size (tlen)."""
        if self.total_transactions == 0:
            return 0.0
        return self.total_items / self.total_transactions

    @property
    def avg_length(self) -> float:
        """Average customer sequence length (item occurrences)."""
        if self.num_sequences == 0:
            return 0.0
        return self.total_items / self.num_sequences


def compute_stats(sequences: Iterable[RawSequence]) -> DatabaseStats:
    """Single-pass statistics over raw sequences."""
    num_sequences = 0
    total_items = 0
    total_transactions = 0
    max_length = 0
    items: set[int] = set()
    for seq in sequences:
        num_sequences += 1
        total_transactions += len(seq)
        length = seq_length(seq)
        total_items += length
        max_length = max(max_length, length)
        for txn in seq:
            items.update(txn)
    return DatabaseStats(
        num_sequences=num_sequences,
        num_distinct_items=len(items),
        total_items=total_items,
        total_transactions=total_transactions,
        max_length=max_length,
    )
