"""The sequence database container (system S19).

A :class:`SequenceDatabase` holds one canonical raw sequence per customer,
assigns customer ids 1..n (matching the paper's CID columns), and carries
an optional :class:`~repro.db.vocabulary.Vocabulary` when built from
non-integer items.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable, Iterator

from repro.core.sequence import RawSequence, canonical, parse, seq_length, validate
from repro.db.stats import DatabaseStats, compute_stats
from repro.db.vocabulary import Vocabulary
from repro.exceptions import InvalidDatabaseError, InvalidParameterError


class SequenceDatabase:
    """An immutable database of customer sequences.

    Customer ids are 1-based positions, as in the paper's tables.  Empty
    customer sequences are rejected: a customer with no transactions has
    no place in the mining problem.
    """

    __slots__ = ("_sequences", "_vocabulary", "_stats", "_digest")

    def __init__(
        self,
        sequences: Iterable[RawSequence],
        vocabulary: Vocabulary | None = None,
    ):
        seqs = tuple(sequences)
        for seq in seqs:
            validate(seq)
            if not seq:
                raise InvalidDatabaseError("empty customer sequence")
        self._sequences = seqs
        self._vocabulary = vocabulary
        self._stats: DatabaseStats | None = None
        self._digest: str | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_texts(cls, texts: Iterable[str]) -> "SequenceDatabase":
        """Build from textual sequences like ``"(a, e, g)(b)(h)"``."""
        return cls(parse(text) for text in texts)

    @classmethod
    def from_itemsets(
        cls, customers: Iterable[Iterable[Iterable[Hashable]]]
    ) -> "SequenceDatabase":
        """Build from nested user items, creating a vocabulary.

        *customers* is an iterable of customer sequences, each a list of
        itemsets of arbitrary hashable items.
        """
        materialised = [[list(txn) for txn in customer] for customer in customers]
        vocab = Vocabulary.from_items(
            item for customer in materialised for txn in customer for item in txn
        )
        return cls((vocab.encode(customer) for customer in materialised), vocab)

    @classmethod
    def from_raw(cls, raws: Iterable[Iterable[Iterable[int]]]) -> "SequenceDatabase":
        """Build from integer itemsets, canonicalising each sequence."""
        return cls(canonical(raw) for raw in raws)

    # -- accessors -----------------------------------------------------------

    @property
    def vocabulary(self) -> Vocabulary | None:
        """The item vocabulary, when the database was built from user items."""
        return self._vocabulary

    @property
    def sequences(self) -> tuple[RawSequence, ...]:
        """All customer sequences, CID order."""
        return self._sequences

    def members(self) -> list[tuple[int, RawSequence]]:
        """(cid, sequence) pairs — the shape the mining code consumes."""
        return list(enumerate(self._sequences, start=1))

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[RawSequence]:
        return iter(self._sequences)

    def __getitem__(self, cid: int) -> RawSequence:
        """Customer sequence by 1-based cid."""
        if not 1 <= cid <= len(self._sequences):
            raise InvalidDatabaseError(f"cid {cid} out of range 1..{len(self)}")
        return self._sequences[cid - 1]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SequenceDatabase):
            return NotImplemented
        return self._sequences == other._sequences

    def __hash__(self) -> int:
        return hash(self._sequences)

    def __repr__(self) -> str:
        return f"SequenceDatabase({len(self)} sequences)"

    @property
    def stats(self) -> DatabaseStats:
        """Summary statistics (computed once, cached)."""
        if self._stats is None:
            self._stats = compute_stats(self._sequences)
        return self._stats

    def content_digest(self) -> str:
        """A stable sha-256 hex digest of the canonical content (cached).

        Hashes the canonical integer sequences (not source file bytes),
        so the same logical database read from SPMF or paper notation —
        or re-read with different whitespace — digests identically.
        Checkpoint fingerprints and service cache keys both rely on it.
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            for seq in self._sequences:
                for txn in seq:
                    hasher.update(b"(")
                    for item in txn:
                        hasher.update(b"%d," % item)
                    hasher.update(b")")
                hasher.update(b";")
            self._digest = hasher.hexdigest()
        return self._digest

    # -- support thresholds --------------------------------------------------

    def delta_for(self, min_support: float | int) -> int:
        """Convert a support threshold into an absolute count delta.

        An ``int`` is taken as an absolute count; a ``float`` in (0, 1] as
        the fraction of the database size (the paper's "minimum support
        threshold"), rounded up.  The result is clamped to at least 1.
        """
        if isinstance(min_support, bool) or min_support <= 0:
            raise InvalidParameterError(
                f"min_support must be positive, got {min_support!r}"
            )
        if isinstance(min_support, int):
            return max(1, min_support)
        if min_support > 1:
            raise InvalidParameterError(
                f"fractional min_support must be <= 1, got {min_support}"
            )
        return max(1, math.ceil(min_support * len(self)))

    def max_sequence_length(self) -> int:
        """Length of the longest customer sequence."""
        return max((seq_length(seq) for seq in self._sequences), default=0)
