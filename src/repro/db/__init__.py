"""Database substrate (system S19): containers, vocabulary, IO, stats."""

from repro.db.database import SequenceDatabase
from repro.db.stats import DatabaseStats
from repro.db.vocabulary import Vocabulary

__all__ = ["SequenceDatabase", "DatabaseStats", "Vocabulary"]
