"""Representation transforms for sequence databases (system S19).

The vertical layouts here are shared by the SPADE and SPAM baselines and
available to downstream users:

* :func:`vertical_format` — item -> ID-list of ``(sid, eid)`` pairs, the
  representation of Zaki's SPADE (§1.1 of the paper);
* :func:`horizontal_format` — the inverse;
* :func:`as_single_items` — flatten itemsets into 1-item transactions
  (the shape of clickstreams and DNA reads);
* :func:`relabel_items` — apply an item mapping, re-canonicalising.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.sequence import RawSequence, canonical
from repro.exceptions import InvalidDatabaseError

#: ID-list: (sid, eid) pairs, eid being the 0-based transaction index.
IdList = list[tuple[int, int]]


def vertical_format(
    members: Iterable[tuple[int, RawSequence]]
) -> dict[int, IdList]:
    """Item -> ID-list over all members, in (sid, eid) order."""
    vertical: dict[int, IdList] = {}
    for sid, seq in members:
        for eid, txn in enumerate(seq):
            for item in txn:
                vertical.setdefault(item, []).append((sid, eid))
    return vertical


def horizontal_format(
    vertical: Mapping[int, IdList]
) -> list[tuple[int, RawSequence]]:
    """Rebuild (sid, sequence) members from an item -> ID-list map.

    Transaction indices must form a contiguous 0..n-1 range per sid;
    anything else raises :class:`InvalidDatabaseError`.
    """
    per_sid: dict[int, dict[int, set[int]]] = {}
    for item, idlist in vertical.items():
        for sid, eid in idlist:
            per_sid.setdefault(sid, {}).setdefault(eid, set()).add(item)
    members: list[tuple[int, RawSequence]] = []
    for sid in sorted(per_sid):
        by_eid = per_sid[sid]
        if set(by_eid) != set(range(len(by_eid))):
            raise InvalidDatabaseError(
                f"sid {sid}: transaction indices {sorted(by_eid)} not contiguous"
            )
        members.append(
            (sid, tuple(tuple(sorted(by_eid[eid])) for eid in range(len(by_eid))))
        )
    return members


def as_single_items(seq: RawSequence) -> RawSequence:
    """Split every itemset into consecutive 1-item transactions.

    Items within one original transaction are emitted in sorted order;
    the transform is lossy (co-occurrence becomes adjacency).
    """
    return tuple((item,) for txn in seq for item in txn)


def relabel_items(
    seq: RawSequence, mapping: Mapping[int, int] | Callable[[int], int]
) -> RawSequence:
    """Apply an item relabelling and re-canonicalise each transaction."""
    lookup = mapping if callable(mapping) else mapping.__getitem__
    return canonical([[lookup(item) for item in txn] for txn in seq])
