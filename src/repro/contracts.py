"""Declared wire/observability contracts (system S33).

The distributed pieces of this repo — coordinator, workers, journal,
event log, soak grader — talk through informal JSON contracts and three
hand-rolled state machines.  This module is the single written-down
source of truth for all of them, as plain data:

- the **event vocabulary** (``repro.event`` v1): every legal event name
  with its required and optional fields (:data:`EVENTS`);
- the **wire schemas**: the legal key sets of every JSON document that
  crosses a process boundary (:data:`WIRE_SCHEMAS`);
- the **error taxonomy**: ``ReproError`` subclass → HTTP status →
  machine-readable code → retryability (:data:`ERROR_TAXONOMY`);
- the **metrics registry**: every metric name produced in ``src/``,
  its kind, and who depends on it (:data:`METRICS`);
- the **state machines**: legal transition tables for the circuit
  breaker, worker membership and job lifecycle
  (:data:`STATE_MACHINES`).

Both sides of each contract consume these tables: the runtime
(``repro.obs.events.validate_event``, the HTTP error paths, the
supervisor's retry classification) and the static checker's WIRE/STATE
rule families in :mod:`repro.analysis`.  Editing a table here moves the
contract for everyone at once; editing only one side turns the
``repro check`` gate red.

Deliberately stdlib-only with no imports from the rest of the package:
everything under ``repro`` may import this module without cycles.  The
taxonomy therefore names exception *classes as strings*; the runtime
helpers resolve them against ``type(exc).__mro__`` names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

# ---------------------------------------------------------------------------
# event vocabulary (schema ``repro.event`` version 1)
# ---------------------------------------------------------------------------

#: envelope keys stamped by ``EventLog.emit`` itself — always legal
ENVELOPE_FIELDS = ("schema", "version", "ts", "level", "event", "trace_id", "job_id")

#: emit() parameters that are part of the envelope, not event fields
ENVELOPE_PARAMS = ("level", "trace_id", "job_id")

#: fields emit() can fill from ambient context when a site omits them
AUTO_FIELDS = ("trace_id",)


@dataclass(frozen=True)
class EventSpec:
    """One declared event: its name and field contract."""

    name: str
    #: fields every record of this event must carry
    required: tuple[str, ...]
    #: fields a record may carry; anything else is a contract violation
    optional: tuple[str, ...] = ()


_EVENT_SPECS = (
    EventSpec("job.accepted", ("job_id", "trace_id"),
              ("database", "algorithm", "delta", "resumed")),
    EventSpec("job.cache_hit", ("job_id", "trace_id")),
    EventSpec("job.started", ("job_id", "attempt")),
    EventSpec("job.checkpoint", ("job_id", "partitions"),
              ("completed_k", "patterns")),
    EventSpec("job.retry", ("job_id", "attempt"), ("partitions",)),
    EventSpec("job.recovered", ("job_id", "resumed"), ("attempts",)),
    EventSpec("job.cancelled", ("job_id",), ("reason",)),
    EventSpec("job.finished", ("job_id", "state"),
              ("complete", "cached", "code", "reason")),
    EventSpec("journal.replayed", ("total_lines", "corrupt_lines"),
              ("jobs", "resumed", "restarted", "unresumable")),
    EventSpec("mine.phase", ("phase", "seconds"), ("algorithm",)),
    EventSpec("fault.injected", ("site", "hit")),
    EventSpec("shard.dispatched", ("lam", "worker")),
    EventSpec("shard.completed", ("lam", "worker", "patterns")),
    EventSpec("shard.retried", ("lam", "worker"), ("reason",)),
    EventSpec("shard.failed", ("reason",)),
    EventSpec("worker.joined", ("worker",), ("static",)),
    EventSpec("worker.suspected", ("worker",), ("lease_overdue_seconds",)),
    EventSpec("worker.retired", ("worker",), ("reason",)),
    EventSpec("worker.left", ("worker",)),
    EventSpec("breaker.opened", ("worker",), ("previous",)),
    EventSpec("breaker.half_open", ("worker",), ("previous",)),
    EventSpec("breaker.closed", ("worker",), ("previous",)),
    EventSpec("cluster.degraded", ("reason",), ("pending",)),
)

#: event name -> full spec
EVENTS: Mapping[str, EventSpec] = {spec.name: spec for spec in _EVENT_SPECS}

#: back-compat view: event name -> required fields beyond the envelope
#: (the shape ``repro.obs.events.EVENT_VOCABULARY`` always had)
EVENT_VOCABULARY: Mapping[str, tuple[str, ...]] = {
    spec.name: spec.required for spec in _EVENT_SPECS
}

#: breaker state -> event narrating the transition into that state
BREAKER_EVENT_BY_STATE: Mapping[str, str] = {
    "open": "breaker.opened",
    "half_open": "breaker.half_open",
    "closed": "breaker.closed",
}

#: breaker transition events, in severity order (soak transition log)
BREAKER_EVENTS = ("breaker.opened", "breaker.half_open", "breaker.closed")

#: membership lifecycle events (soak transition log)
MEMBERSHIP_EVENTS = (
    "worker.joined", "worker.suspected", "worker.retired", "worker.left",
)


def event_spec(name: str) -> EventSpec | None:
    """The declared spec for *name*, or None for an unknown event."""
    return EVENTS.get(name)


def validate_event_fields(name: str, fields: Mapping[str, object]) -> list[str]:
    """Field-level problems with one event's payload (beyond the envelope)."""
    spec = EVENTS.get(name)
    if spec is None:
        return [f"unknown event {name!r}"]
    problems = []
    missing = [key for key in spec.required if key not in fields]
    if missing:
        problems.append(f"{name} record missing fields: {missing}")
    legal = set(spec.required) | set(spec.optional) | set(ENVELOPE_FIELDS)
    extras = sorted(key for key in fields if key not in legal)
    if extras:
        problems.append(f"{name} record carries undeclared fields: {extras}")
    return problems


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ErrorRule:
    """One row of the error taxonomy, keyed by exception class *name*."""

    exception: str
    status: int
    code: str
    retryable: bool


#: HTTP error mapping, most specific class first (first mro match wins).
#: Must stay in lockstep with ``repro.service.http._ERROR_STATUS`` —
#: WIRE003 and :func:`verify_error_status` both enforce the bijection.
ERROR_TAXONOMY: tuple[ErrorRule, ...] = (
    ErrorRule("ServiceOverloadedError", 429, "overloaded", False),
    ErrorRule("ServiceClosedError", 503, "shutting_down", False),
    ErrorRule("UnknownDatabaseError", 404, "unknown_database", False),
    ErrorRule("UnknownJobError", 404, "unknown_job", False),
    ErrorRule("UnknownWorkerError", 404, "unknown_worker", False),
    ErrorRule("UnknownAlgorithmError", 400, "unknown_algorithm", False),
    ErrorRule("DataFormatError", 400, "bad_database", False),
    ErrorRule("InvalidParameterError", 400, "bad_parameter", False),
    ErrorRule("ReproError", 400, "error", False),
)

#: fallback row for anything outside the ``ReproError`` hierarchy
INTERNAL_ERROR = ErrorRule("Exception", 500, "internal", True)

#: retry classification special cases (``supervise.classify`` semantics):
#: first ``type(exc).__mro__`` name found here wins, else the default.
RETRYABLE_BY_CLASS: Mapping[str, bool] = {
    "OperationCancelledError": False,  # the caller asked for cancellation
    "InjectedFaultError": True,        # stands in for transient infra faults
    "ReproError": False,               # deterministic input failures repeat
}

#: unexpected exceptions (bugs, MemoryError) are what supervision is for
DEFAULT_RETRYABLE = True

#: worker-specific wire codes outside the taxonomy: code -> (status, retryable)
WORKER_ERROR_CODES: Mapping[str, tuple[int, bool]] = {
    "payload_too_large": (413, False),
    "bad_payload": (400, False),
    "not_found": (404, False),
    "internal": (500, True),
}


def _mro_names(exc: BaseException) -> tuple[str, ...]:
    return tuple(klass.__name__ for klass in type(exc).__mro__)


def error_rule_for(exc: BaseException) -> ErrorRule:
    """The taxonomy row governing *exc* (mro walk; internal fallback)."""
    by_name = {rule.exception: rule for rule in ERROR_TAXONOMY}
    for name in _mro_names(exc):
        rule = by_name.get(name)
        if rule is not None:
            return rule
    return INTERNAL_ERROR


def wire_code_for(exc: BaseException) -> str:
    """The declared machine-readable error code for *exc*."""
    return error_rule_for(exc).code


def status_for(exc: BaseException) -> int:
    """The declared HTTP status for *exc*."""
    return error_rule_for(exc).status


def is_retryable(exc: BaseException) -> bool:
    """Whether the supervisor may retry after *exc* (classify semantics)."""
    for name in _mro_names(exc):
        verdict = RETRYABLE_BY_CLASS.get(name)
        if verdict is not None:
            return verdict
    return DEFAULT_RETRYABLE


def retryable_for_status(status: int) -> bool:
    """Default shard-retry decision when an error body carries no verdict."""
    return status >= 500


def verify_error_status(rows: object) -> None:
    """Assert an ``_ERROR_STATUS``-shaped table matches the taxonomy.

    Called at import time by ``repro.service.http`` so a drifted table
    fails fast instead of answering with undeclared statuses.  Order is
    significant: the tables are first-``isinstance``-match lists, so a
    superclass row above a subclass row changes behaviour.
    """
    declared = [(rule.exception, rule.status, rule.code) for rule in ERROR_TAXONOMY]
    actual = [
        (klass.__name__, int(status), str(code))
        for klass, status, code in rows  # type: ignore[union-attr]
    ]
    if actual != declared:
        raise RuntimeError(
            f"_ERROR_STATUS drifted from repro.contracts.ERROR_TAXONOMY: "
            f"{actual} != {declared}"
        )


def validate_error_body(doc: object, *, require_retryable: bool = False) -> list[str]:
    """Problems with one wire error body (empty list when conformant)."""
    if not isinstance(doc, dict):
        return ["error body is not a JSON object"]
    error = doc.get("error")
    if not isinstance(error, dict):
        return ["error body has no 'error' object"]
    problems = []
    if not isinstance(error.get("code"), str):
        problems.append(f"error code is not a string: {error.get('code')!r}")
    if not isinstance(error.get("message"), str):
        problems.append("error body has no message")
    if require_retryable and not isinstance(error.get("retryable"), bool):
        problems.append("worker error body has no boolean 'retryable'")
    legal = {"code", "message", "retryable", "retry_after_seconds"}
    extras = sorted(key for key in error if key not in legal)
    if extras:
        problems.append(f"error body carries undeclared keys: {extras}")
    return problems


# ---------------------------------------------------------------------------
# wire schemas
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WireSchema:
    """The legal key set of one JSON document family.

    ``keys`` is every key an in-repo producer writes (at any nesting
    level of the document) — each must still be written somewhere;
    ``accepted`` names keys that are legal on the wire but produced only
    by external clients (request options, forward-compat hooks);
    ``read`` is the subset some in-repo consumer must still be reading.
    A key in ``read`` no consumer touches, a consumed or produced key
    outside ``keys`` + ``accepted``, or a ``keys`` entry nothing writes
    any more, is WIRE002 drift.
    """

    name: str
    keys: tuple[str, ...]
    read: tuple[str, ...] = ()
    accepted: tuple[str, ...] = ()
    doc: str = ""


_WIRE_SCHEMAS = (
    WireSchema(
        "error",
        keys=("error", "code", "message", "retryable", "retry_after_seconds"),
        read=("error", "message", "retryable"),
        doc="HTTP error body: {'error': {'code', 'message', ...}}",
    ),
    WireSchema(
        "index",
        keys=("service", "endpoints"),
        doc="GET / endpoint index",
    ),
    WireSchema(
        "health",
        keys=(
            "status", "role", "databases", "cache_entries", "queue_depth",
            "jobs", "workers_connected", "workers_live", "worker_states",
            "workers", "dispatch_threads", "shards_mined", "shards_failed",
            "uptime_seconds", "max_shard_bytes", "coordinator", "registered",
            "heartbeats", "lease_seconds",
        ),
        read=("status", "dispatch_threads"),
        doc="GET /healthz on the service and on a worker",
    ),
    WireSchema(
        "mine_submit",
        keys=("database", "min_support", "job_id", "status", "cached", "trace_id"),
        accepted=("algorithm", "options", "deadline_seconds"),
        read=("job_id", "cached"),
        doc="POST /mine request and response",
    ),
    WireSchema(
        "job",
        keys=(
            "jobs", "id", "status", "attempts", "queued_seconds",
            "queue_wait_seconds", "run_seconds", "trace_id", "request",
            "database", "digest", "delta", "algorithm", "options", "error",
            "code", "message", "cached", "result", "database_size",
            "elapsed_seconds", "complete", "completed_k", "pattern_count",
            "patterns", "pattern", "support",
        ),
        read=("status", "error", "result", "patterns", "pattern", "support"),
        doc="GET /jobs and GET /jobs/<id> documents",
    ),
    WireSchema(
        "database_admin",
        keys=(
            "name", "digest", "sequences", "replaced",
            "evicted", "cache_entries_dropped",
        ),
        accepted=("format", "content"),
        doc="POST /databases and DELETE /databases/<name>",
    ),
    WireSchema(
        "membership",
        keys=(
            "url", "worker", "state", "static", "heartbeats", "breaker",
            "lease_expires_in_seconds", "lease_seconds", "joined", "renewed",
            "left", "workers", "counts", "live", "suspect", "retired",
        ),
        read=("url", "lease_seconds", "counts", "live"),
        doc="POST/DELETE /workers, heartbeats and the membership table",
    ),
    WireSchema(
        "metrics",
        keys=(
            "format", "version", "metrics", "type", "name", "labels",
            "value", "max", "min", "count", "sum", "buckets",
        ),
        read=("type", "name", "labels", "value", "max", "count", "sum", "buckets"),
        doc="GET /metrics snapshot and its per-series entries",
    ),
    WireSchema(
        "shard_payload",
        keys=(
            "format", "version", "lam", "delta", "database_digest",
            "options", "frequent_items", "members", "digest",
        ),
        read=(
            "format", "version", "lam", "delta", "database_digest",
            "options", "frequent_items", "members", "digest",
        ),
        doc="repro.shard-payload v1 (POST /shards request)",
    ),
    WireSchema(
        "shard_result",
        keys=(
            "format", "version", "lam", "payload_digest", "patterns",
            "report", "trace_id",
        ),
        read=("format", "version", "lam", "payload_digest", "patterns", "report"),
        doc="repro.shard-result v1 (POST /shards response)",
    ),
    WireSchema(
        "journal",
        keys=(
            "event", "job", "ts", "trace_id", "database", "digest", "delta",
            "algorithm", "options", "deadline_seconds", "attempt",
            "partitions", "completed_k", "checkpoint", "state", "error",
            "code", "complete",
        ),
        read=(
            "event", "job", "trace_id", "attempt", "checkpoint", "state",
            "error", "code",
        ),
        doc="write-ahead journal JSONL records",
    ),
    WireSchema(
        "soak_report",
        keys=(
            "format", "version", "verdict", "counts", "lines", "invariants",
            "broken_invariants", "recovery", "transitions", "meta", "grade",
            "kind", "reason", "job_id", "status", "seconds", "error",
            "matched", "cached", "ts", "event", "worker",
            "previous", "killed_ts", "rejoin_seconds",
            "first_shard_after_rejoin_seconds",
            "every_accepted_job_finished", "results_byte_identical",
            "event_log_validates", "no_orphaned_dispatch_threads",
            "duration_seconds", "workers", "kills", "statuses",
        ),
        accepted=("degraded",),
        read=(
            "verdict", "counts", "lines", "broken_invariants", "recovery",
            "transitions", "grade", "kind", "reason", "job_id", "status",
            "matched", "cached", "degraded", "error", "ts", "event",
            "worker", "previous", "rejoin_seconds",
            "first_shard_after_rejoin_seconds",
        ),
        doc="repro.soak-report v1 (graded chaos-soak verdict)",
    ),
    WireSchema(
        "bench_verdict",
        keys=(
            "format", "version", "scale", "tolerance", "calibrated",
            "calibration_ratio", "verdict", "regressions",
            "structure_findings", "runs", "algorithm", "minsup", "status",
            "elapsed_baseline", "elapsed_candidate", "ratio", "findings",
            "elapsed_seconds", "delta", "patterns", "counters",
            "phase_seconds", "database_size",
        ),
        read=(
            "format", "verdict", "runs", "algorithm", "minsup", "status",
            "ratio", "findings", "elapsed_seconds", "counters",
            "phase_seconds", "scale", "structure_findings",
        ),
        doc="repro bench --compare verdict document",
    ),
)

#: schema name -> spec
WIRE_SCHEMAS: Mapping[str, WireSchema] = {
    schema.name: schema for schema in _WIRE_SCHEMAS
}

#: HTTP header names key collectors must ignore (not JSON body keys)
WIRE_HEADER_KEYS = (
    "Accept", "Content-Length", "Content-Type", "Retry-After", "traceparent",
)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricSpec:
    """One declared metric series family."""

    name: str
    kind: str  # counter | gauge | histogram
    #: repo-relative modules that produce the series
    produced_by: tuple[str, ...]
    #: load-bearing readers ("bench/compare.py", "ci:service-smoke", ...)
    consumers: tuple[str, ...] = ()
    labels: tuple[str, ...] = ()


_METRIC_SPECS = (
    # core mining counters (the paper's own evidence)
    MetricSpec("disc.comparisons", "counter", ("core/disc.py",),
               ("bench/compare.py", "ci:obs-smoke")),
    MetricSpec("disc.lemma1_frequent", "counter", ("core/disc.py",),
               ("bench/compare.py", "ci:obs-smoke")),
    MetricSpec("disc.lemma2_prunes", "counter", ("core/disc.py",),
               ("bench/compare.py", "ci:obs-smoke")),
    MetricSpec("disc.pruned_width", "histogram", ("core/disc.py",)),
    MetricSpec("disc.ckms_calls", "counter", ("core/disc.py",)),
    MetricSpec("disc.rounds", "counter",
               ("core/discall.py", "core/dynamic.py")),
    MetricSpec("counting.frequent", "counter",
               ("core/disc.py", "core/discall.py", "core/dynamic.py",
                "core/parallel.py", "cluster/coordinator.py"),
               labels=("k",)),
    MetricSpec("discall.first_level_mined", "counter",
               ("core/discall.py", "core/dynamic.py")),
    MetricSpec("discall.second_level_mined", "counter",
               ("core/discall.py", "core/dynamic.py")),
    MetricSpec("discall.reduced_members", "counter",
               ("core/discall.py", "core/dynamic.py")),
    MetricSpec("sorted_db.kms_calls", "counter", ("core/sorted_db.py",)),
    MetricSpec("sorted_db.kms_dropped", "counter", ("core/sorted_db.py",)),
    MetricSpec("sorted_db.initial_size", "histogram", ("core/sorted_db.py",)),
    MetricSpec("partition.first_level", "counter", ("core/partition.py",)),
    MetricSpec("partition.first_level_size", "histogram", ("core/partition.py",)),
    MetricSpec("partition.extension", "counter", ("core/partition.py",)),
    MetricSpec("partition.extension_size", "histogram", ("core/partition.py",)),
    MetricSpec("parallel.job_size", "histogram", ("core/parallel.py",)),
    MetricSpec("parallel.jobs", "counter", ("core/parallel.py",)),
    MetricSpec("parallel.payload_bytes", "histogram", ("core/parallel.py",)),
    # mining service
    MetricSpec("service.cache_hits", "counter", ("service/service.py",),
               ("ci:service-smoke",)),
    MetricSpec("service.cache_misses", "counter", ("service/service.py",),
               ("ci:service-smoke",)),
    MetricSpec("service.recovered_jobs", "counter", ("service/service.py",)),
    MetricSpec("service.partial_results", "counter", ("service/service.py",)),
    MetricSpec("service.cache_invalidated", "counter", ("service/service.py",)),
    MetricSpec("service.journal_replayed_lines", "counter", ("service/service.py",)),
    MetricSpec("service.journal_corrupt_lines", "counter", ("service/service.py",)),
    MetricSpec("service.journal_resumed", "counter", ("service/service.py",)),
    MetricSpec("service.journal_restarted", "counter", ("service/service.py",)),
    MetricSpec("service.journal_unresumable", "counter", ("service/service.py",)),
    MetricSpec("service.queue_depth", "gauge", ("service/scheduler.py",)),
    MetricSpec("service.rejected", "counter", ("service/scheduler.py",)),
    MetricSpec("service.retries", "counter", ("service/scheduler.py",)),
    MetricSpec("service.listener_errors", "counter", ("service/scheduler.py",)),
    MetricSpec("service.job_seconds", "histogram",
               ("service/scheduler.py", "service/service.py"),
               ("ci:service-smoke",)),
    MetricSpec("service.jobs", "counter", ("service/scheduler.py",),
               ("ci:service-smoke",), labels=("state",)),
    # cluster
    MetricSpec("cluster.workers_connected", "gauge", ("service/service.py",)),
    MetricSpec("cluster.workers_live", "gauge", ("service/service.py",)),
    MetricSpec("cluster.shard_cost", "histogram", ("cluster/coordinator.py",)),
    MetricSpec("cluster.shards_dispatched", "counter", ("cluster/coordinator.py",)),
    MetricSpec("cluster.shards_retried", "counter", ("cluster/coordinator.py",)),
    MetricSpec("cluster.shards_failed", "counter", ("cluster/coordinator.py",)),
    MetricSpec("cluster.shards_merged", "counter", ("cluster/coordinator.py",)),
    MetricSpec("cluster.shards_mined_locally", "counter",
               ("cluster/coordinator.py",)),
    MetricSpec("cluster.breaker_state", "gauge", ("cluster/membership.py",),
               labels=("worker",)),
    # worker
    MetricSpec("worker.shards_mined", "counter", ("cluster/worker.py",)),
    MetricSpec("worker.patterns_returned", "counter", ("cluster/worker.py",)),
    MetricSpec("worker.shard_cost", "histogram", ("cluster/worker.py",)),
    MetricSpec("worker.shards_failed", "counter", ("cluster/worker.py",)),
)

#: metric name -> spec
METRICS: Mapping[str, MetricSpec] = {spec.name: spec for spec in _METRIC_SPECS}

#: valid metric kinds (the three series types the registry implements)
METRIC_KINDS = ("counter", "gauge", "histogram")


# ---------------------------------------------------------------------------
# state machines
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StateMachine:
    """Declared legal transitions of one hand-rolled state machine.

    ``module``/``attribute`` anchor the static STATE001 rule: every
    assignment to that attribute inside that module must form an edge of
    ``transitions`` (self-loops are implicitly legal; ``__init__``
    assignments must set ``initial``).
    """

    name: str
    states: tuple[str, ...]
    initial: str
    transitions: tuple[tuple[str, str], ...]
    module: str
    attribute: str

    def allows(self, source: str, target: str) -> bool:
        """Whether *source* → *target* is a declared (or self-loop) edge."""
        return source == target or (source, target) in self.transitions


_STATE_MACHINES = (
    StateMachine(
        "breaker",
        states=("closed", "open", "half_open"),
        initial="closed",
        transitions=(
            ("closed", "open"),       # failure threshold crossed
            ("open", "half_open"),    # backoff elapsed, probe allowed
            ("half_open", "open"),    # probe failed
            ("half_open", "closed"),  # probe succeeded
            ("open", "closed"),       # late success from a pre-open probe
        ),
        module="cluster/breaker.py",
        attribute="_state",
    ),
    StateMachine(
        "membership",
        states=("live", "suspect", "retired"),
        initial="live",
        transitions=(
            ("live", "suspect"),      # lease expired
            ("live", "retired"),      # graceful leave
            ("suspect", "live"),      # heartbeat / probe cleared suspicion
            ("suspect", "retired"),   # suspicion outlived the grace period
            ("retired", "live"),      # re-registration (fresh record)
        ),
        module="cluster/membership.py",
        attribute="state",
    ),
    StateMachine(
        "job",
        states=("queued", "running", "done", "failed", "cancelled"),
        initial="queued",
        transitions=(
            ("queued", "running"),
            ("queued", "done"),        # cache hit served without running
            ("queued", "failed"),      # unresumable journal replay
            ("queued", "cancelled"),   # cancelled while waiting
            ("running", "done"),
            ("running", "failed"),
            ("running", "cancelled"),
        ),
        module="service/scheduler.py",
        attribute="state",
    ),
)

#: machine name -> spec
STATE_MACHINES: Mapping[str, StateMachine] = {
    machine.name: machine for machine in _STATE_MACHINES
}

#: breaker state -> numeric gauge code (kept with the machine it encodes)
BREAKER_STATE_CODES: Mapping[str, int] = {"closed": 0, "half_open": 1, "open": 2}


def check_transition(machine: str, source: str, target: str) -> bool:
    """Whether *source* → *target* is declared legal for *machine*."""
    spec = STATE_MACHINES[machine]
    if source not in spec.states or target not in spec.states:
        return False
    return spec.allows(source, target)


def verify_states(machine: str, states: tuple[str, ...], initial: str) -> None:
    """Assert a module's local state constants match the declared machine.

    Called at import time by the modules that own each machine so a
    renamed or added state fails fast, before the static gate runs.
    """
    spec = STATE_MACHINES[machine]
    if set(states) != set(spec.states) or initial != spec.initial:
        raise RuntimeError(
            f"{machine} states drifted from repro.contracts: "
            f"{sorted(states)} (initial {initial!r}) != "
            f"{sorted(spec.states)} (initial {spec.initial!r})"
        )
