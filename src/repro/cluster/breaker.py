"""Per-worker circuit breakers for shard dispatch (system S30).

A breaker sits between the coordinator and one worker and answers a
single question before every dispatch: *is it worth sending this worker
a shard right now?*  Consecutive transport/5xx failures trip the
breaker ``closed → open``; an open breaker refuses dispatch outright,
so a dead or sick worker stops eating shard attempts (and the retry
latency they cost).  After a backoff the breaker admits exactly one
half-open *probe* request — success closes it again, failure re-opens
it with a doubled backoff (capped), so a flapping worker is probed at a
gentle, widening cadence instead of hammered.

State machine::

    closed ──(failures >= threshold)──> open
    open   ──(backoff elapsed, one probe admitted)──> half_open
    half_open ──(probe succeeds)──> closed
    half_open ──(probe fails)────> open   (backoff doubled, capped)

Thread model: :meth:`allow` / :meth:`record_success` /
:meth:`record_failure` are called from per-worker dispatch threads
while :meth:`state` / :meth:`snapshot` are read by the coordinating
thread, HTTP handler threads (``/healthz``) and the membership reaper —
everything mutable lives under one lock.  The transition listener is
invoked *outside* the lock so it may emit events or touch metric
registries without any lock-ordering concern.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro import contracts
from repro.exceptions import InvalidParameterError

#: breaker states, as exported on ``/healthz`` and in events
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

contracts.verify_states("breaker", (CLOSED, OPEN, HALF_OPEN), CLOSED)

#: numeric encoding for the ``cluster.breaker_state{worker}`` gauge:
#: the gauge rises with severity, so alerts can threshold on ``>= 2``;
#: declared next to the state machine so dashboards and code agree
BREAKER_STATE_CODES: dict[str, int] = dict(contracts.BREAKER_STATE_CODES)

#: transition listener: ``(old_state, new_state)``; called outside the lock
TransitionListener = Callable[[str, str], None]


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Tunables for one :class:`CircuitBreaker`.

    ``failure_threshold`` consecutive recorded failures open the
    breaker; ``reset_seconds`` is the first open→half-open backoff,
    multiplied by ``backoff_factor`` on every failed probe up to
    ``max_reset_seconds``.
    """

    failure_threshold: int = 3
    reset_seconds: float = 5.0
    backoff_factor: float = 2.0
    max_reset_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_seconds <= 0:
            raise InvalidParameterError(
                f"reset_seconds must be > 0, got {self.reset_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise InvalidParameterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_reset_seconds < self.reset_seconds:
            raise InvalidParameterError(
                "max_reset_seconds must be >= reset_seconds, got "
                f"{self.max_reset_seconds} < {self.reset_seconds}"
            )


class CircuitBreaker:
    """Failure-gated admission for one worker's shard dispatch."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        listener: TransitionListener | None = None,
    ) -> None:
        self.config = config or BreakerConfig()
        self._clock = clock
        self._listener = listener
        self._lock = threading.Lock()
        self._state = CLOSED  # guarded-by: _lock
        self._failures = 0  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock
        self._backoff = self.config.reset_seconds  # guarded-by: _lock
        self._probe_inflight = False  # guarded-by: _lock

    # -- reads ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """The current state (one of closed / open / half_open).

        Pure read: an open breaker whose backoff has elapsed still reads
        ``open`` until :meth:`allow` admits the half-open probe.
        """
        with self._lock:
            return self._state

    def ready(self) -> bool:
        """Would :meth:`allow` admit a dispatch right now?  (No mutation.)

        The coordinating thread uses this to decide whether spawning a
        dispatch thread for the worker is worthwhile without consuming
        the single half-open probe slot.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return self._clock() - self._opened_at >= self._backoff
            return not self._probe_inflight  # half_open

    def snapshot(self) -> dict[str, object]:
        """State + tunings for ``/healthz`` and the soak report."""
        with self._lock:
            doc: dict[str, object] = {
                "state": self._state,
                "consecutive_failures": self._failures,
            }
            if self._state == OPEN:
                remaining = self._backoff - (self._clock() - self._opened_at)
                doc["retry_in_seconds"] = round(max(0.0, remaining), 3)
            return doc

    # -- transitions ---------------------------------------------------------

    def allow(self) -> bool:
        """Admit or refuse one dispatch; may take the half-open probe slot.

        Returns True when the caller may send the worker a request.  In
        half-open, exactly one caller wins the probe slot until its
        outcome is recorded (or :meth:`cancel_probe` releases it).
        """
        transition: tuple[str, str] | None = None
        with self._lock:
            if self._state == CLOSED:
                allowed = True
            elif self._state == OPEN:
                if self._clock() - self._opened_at >= self._backoff:
                    transition = (self._state, HALF_OPEN)
                    self._state = HALF_OPEN
                    self._probe_inflight = True
                    allowed = True
                else:
                    allowed = False
            else:  # half_open
                allowed = not self._probe_inflight
                if allowed:
                    self._probe_inflight = True
        self._notify(transition)
        return allowed

    def record_success(self) -> None:
        """One request succeeded: close (and fully reset) the breaker."""
        transition: tuple[str, str] | None = None
        with self._lock:
            if self._state != CLOSED:
                transition = (self._state, CLOSED)
            self._state = CLOSED
            self._failures = 0
            self._backoff = self.config.reset_seconds
            self._probe_inflight = False
        self._notify(transition)

    def record_failure(self) -> None:
        """One request failed: count toward opening, or fail the probe."""
        transition: tuple[str, str] | None = None
        with self._lock:
            if self._state == HALF_OPEN:
                # the probe failed: back off harder before the next one
                transition = (self._state, OPEN)
                self._state = OPEN
                self._opened_at = self._clock()
                self._backoff = min(
                    self._backoff * self.config.backoff_factor,
                    self.config.max_reset_seconds,
                )
                self._probe_inflight = False
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.config.failure_threshold:
                    transition = (self._state, OPEN)
                    self._state = OPEN
                    self._opened_at = self._clock()
                    self._backoff = self.config.reset_seconds
            # already OPEN: a straggling failure changes nothing
        self._notify(transition)

    def cancel_probe(self) -> None:
        """Release an admitted half-open probe that was never sent.

        A dispatch thread that wins the probe slot but finds no pending
        shard (run finished, run aborted) must hand the slot back, or
        the breaker would stay half-open-with-probe forever and refuse
        every later run.
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False

    def _notify(self, transition: tuple[str, str] | None) -> None:
        if transition is not None and self._listener is not None:
            self._listener(*transition)
