"""Dynamic worker membership for the cluster coordinator (system S30).

PR 8's worker set was a list frozen at coordinator startup.  This module
makes it a *lease table*: workers announce themselves over HTTP
(``POST /workers``), renew a heartbeat lease on an interval, and are
marked ``live → suspect → retired`` as leases lapse.  A coordinator-side
reaper thread sweeps the table, probing suspects' ``/healthz`` before
giving up on them — a worker whose heartbeats are lost but whose data
path still answers is re-admitted, not retired.  Workers joining
mid-job start receiving shards from the pending queue on the
coordinating thread's next sync (see
:meth:`repro.cluster.coordinator.ShardRun.sync_workers`) — no
coordinator restart, no job restart.

Statically configured workers (``--worker URL`` on the CLI, or a
:class:`~repro.cluster.coordinator.WorkerPool` built from URLs) join
the same table with ``static=True``: they hold no lease and are never
retired by the reaper — their health is governed entirely by their
:class:`~repro.cluster.breaker.CircuitBreaker`.  A static worker that
later registers over HTTP converts to a leased one.

Every worker owns a circuit breaker (created fresh on rejoin — a new
process deserves a clean slate).  Breaker transitions are narrated as
``breaker.opened`` / ``breaker.half_open`` / ``breaker.closed`` events
and exported as the ``cluster.breaker_state{worker}`` gauge
(0=closed, 1=half_open, 2=open) when a metrics registry is attached.

Fault sites ``worker.register`` and ``worker.heartbeat`` let the chaos
harness fail membership traffic deterministically (see
:mod:`repro.faults`).

Thread model: the lease table is shared by HTTP handler threads
(register/heartbeat/describe), the reaper thread, per-worker dispatch
threads (liveness checks) and the coordinating thread
(candidate listing) — all mutable record state is guarded by one
membership lock.  Health probes run *outside* the lock (they block on
sockets); their verdicts are applied under the lock only if the record
generation is unchanged, so a worker that re-registered mid-probe is
never clobbered by a stale verdict.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Generic, Iterator, Protocol, TypeVar

from repro import contracts
from repro.cluster.breaker import (
    BREAKER_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
)
from repro.exceptions import InvalidParameterError
from repro.faults import fault_point
from repro.obs.events import emit as emit_event
from repro.obs.metrics import MetricsRegistry

#: membership states, as exported on ``/healthz`` and in events
LIVE = "live"
SUSPECT = "suspect"
RETIRED = "retired"

contracts.verify_states("membership", (LIVE, SUSPECT, RETIRED), LIVE)


class WorkerTransport(Protocol):
    """What membership needs from a worker client: a health probe."""

    base_url: str

    def healthy(self, timeout: float = 2.0) -> bool:
        """One liveness probe; False on any failure."""
        ...


ClientT = TypeVar("ClientT", bound=WorkerTransport)


class WorkerRecord(Generic[ClientT]):
    """One worker's row in the lease table.

    ``client`` and ``breaker`` are fixed for the record's generation;
    the mutable lifecycle fields are guarded by the owning
    :class:`WorkerMembership`'s lock.
    """

    __slots__ = (
        "url", "client", "breaker", "state", "static",
        "lease_expires", "joined_at", "heartbeats", "generation",
    )

    def __init__(
        self,
        url: str,
        client: ClientT,
        breaker: CircuitBreaker,
        static: bool,
        lease_expires: float,
        joined_at: float,
        generation: int,
    ) -> None:
        self.url = url
        self.client = client
        self.breaker = breaker
        self.state = LIVE  # guarded-by: membership lock
        self.static = static  # guarded-by: membership lock
        self.lease_expires = lease_expires  # guarded-by: membership lock
        self.joined_at = joined_at  # guarded-by: membership lock
        self.heartbeats = 0  # guarded-by: membership lock
        self.generation = generation


class WorkerMembership(Generic[ClientT]):
    """The coordinator's dynamic lease table of workers."""

    def __init__(
        self,
        client_factory: Callable[[str], ClientT],
        lease_seconds: float = 15.0,
        retire_grace: float | None = None,
        probe_timeout: float = 2.0,
        breaker_config: BreakerConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_seconds <= 0:
            raise InvalidParameterError(
                f"lease_seconds must be > 0, got {lease_seconds}"
            )
        self._client_factory = client_factory
        self.lease_seconds = lease_seconds
        #: how long past its lease a suspect survives before retirement
        self.retire_grace = (
            retire_grace if retire_grace is not None else lease_seconds
        )
        self.probe_timeout = probe_timeout
        self.breaker_config = breaker_config or BreakerConfig()
        self._clock = clock
        #: attach a registry (the service does) to export membership and
        #: breaker gauges; None keeps the module registry-free in tests
        self.metrics: MetricsRegistry | None = None
        self._lock = threading.Lock()
        self._records: dict[str, WorkerRecord[ClientT]] = {}  # guarded-by: _lock
        self._generations = 0  # guarded-by: _lock
        self._reaper: threading.Thread | None = None  # guarded-by: _lock
        self._stop = threading.Event()

    # -- registration protocol ----------------------------------------------

    def register(self, url: str, static: bool = False) -> dict[str, object]:
        """Admit (or revive, or renew) the worker at *url*.

        Called by ``POST /workers`` and by static CLI configuration.
        Registering an unknown or retired URL (re)joins it with a fresh
        breaker and emits ``worker.joined``; registering a known live or
        suspect one just renews its lease (registration is the worker's
        first heartbeat, and re-registration is always safe).  Returns
        the lease document the HTTP layer answers with.
        """
        fault_point("worker.register")
        url = _normalise_url(url)
        now = self._clock()
        joined = False
        with self._lock:
            record = self._records.get(url)
            if record is None or record.state == RETIRED:
                self._generations += 1
                record = WorkerRecord(
                    url,
                    self._client_factory(url),
                    CircuitBreaker(
                        self.breaker_config,
                        clock=self._clock,
                        listener=self._breaker_listener(url),
                    ),
                    static,
                    now + self.lease_seconds,
                    now,
                    self._generations,
                )
                self._records[url] = record
                joined = True
            else:
                record.state = LIVE
                record.lease_expires = now + self.lease_seconds
                if record.static and not static:
                    record.static = False  # converted to a leased worker
        if joined:
            emit_event("worker.joined", worker=url, static=static)
            self._set_breaker_gauge(url, CLOSED_CODE)
        return {
            "worker": url,
            "state": LIVE,
            "lease_seconds": self.lease_seconds,
            "joined": joined,
        }

    def heartbeat(self, url: str) -> bool:
        """Renew the lease of *url*; False when it must re-register.

        A heartbeat from a suspect worker clears the suspicion (the
        worker reached us — that is better evidence than a missed
        lease).  Retired and unknown workers get False: the lease is
        gone, and the worker should answer with a full ``register``.
        """
        fault_point("worker.heartbeat")
        url = _normalise_url(url)
        now = self._clock()
        with self._lock:
            record = self._records.get(url)
            if record is None or record.state == RETIRED:
                return False
            record.state = LIVE
            record.lease_expires = now + self.lease_seconds
            record.heartbeats += 1
            return True

    def deregister(self, url: str) -> bool:
        """Gracefully retire *url* (worker shutting down); False if unknown."""
        url = _normalise_url(url)
        with self._lock:
            record = self._records.get(url)
            if record is None or record.state == RETIRED:
                return False
            record.state = RETIRED
        emit_event("worker.left", worker=url)
        return True

    # -- the reaper ----------------------------------------------------------

    def reap(self, now: float | None = None) -> None:
        """One sweep of the lease table: suspect, probe, retire.

        Leased workers past their lease become ``suspect`` and are
        health-probed; a passing probe re-admits them (lease renewed), a
        failing one past the retire grace retires them.  Static workers
        hold no lease and are skipped entirely.  Deterministic given a
        fake clock — the unit tests drive it directly; the background
        reaper thread (:meth:`start`) just calls it on an interval.
        """
        if now is None:
            now = self._clock()
        suspects: list[WorkerRecord[ClientT]] = []
        newly_suspect: list[tuple[str, float]] = []
        with self._lock:
            for record in self._records.values():
                if record.state == RETIRED or record.static:
                    continue
                if record.state == LIVE and now > record.lease_expires:
                    record.state = SUSPECT
                    newly_suspect.append(
                        (record.url, max(0.0, now - record.lease_expires))
                    )
                if record.state == SUSPECT:
                    suspects.append(record)
        for url, overdue in newly_suspect:
            emit_event(
                "worker.suspected", level="warn", worker=url,
                lease_overdue_seconds=round(overdue, 3),
            )
        for record in suspects:
            # the probe blocks on a socket: never under the lock
            alive = record.client.healthy(timeout=self.probe_timeout)
            retired = False
            with self._lock:
                if self._records.get(record.url) is not record:
                    continue  # re-registered mid-probe; verdict is stale
                if record.state != SUSPECT:
                    continue
                if alive:
                    record.state = LIVE
                    record.lease_expires = now + self.lease_seconds
                elif now > record.lease_expires + self.retire_grace:
                    record.state = RETIRED
                    retired = True
            if retired:
                emit_event(
                    "worker.retired", level="warn", worker=record.url,
                    reason="missed heartbeat lease and failed health probes",
                )

    def start(self, interval: float | None = None) -> None:
        """Start the background reaper thread (idempotent)."""
        if interval is None:
            interval = max(0.5, self.lease_seconds / 3.0)
        with self._lock:
            if self._reaper is not None:
                return
            self._stop.clear()
            self._reaper = threading.Thread(
                target=self._reaper_loop, args=(interval,),
                name="membership-reaper", daemon=True,
            )
            self._reaper.start()

    def stop(self) -> None:
        """Stop the reaper thread (idempotent; joins it briefly)."""
        with self._lock:
            reaper = self._reaper
            self._reaper = None
        if reaper is not None:
            self._stop.set()
            reaper.join(timeout=5.0)

    def _reaper_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self.reap()

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            urls = list(self._records)
        return iter(urls)

    def record(self, url: str) -> WorkerRecord[ClientT] | None:
        """The current record for *url* (any state), or None."""
        with self._lock:
            return self._records.get(_normalise_url(url))

    def dispatch_candidates(self) -> list[WorkerRecord[ClientT]]:
        """Workers worth (re)starting a dispatch thread for right now:
        live, and with a breaker that would admit a request."""
        with self._lock:
            records = [
                record for record in self._records.values()
                if record.state == LIVE
            ]
        return [record for record in records if record.breaker.ready()]

    def dispatch_allowed(self, record: WorkerRecord[ClientT]) -> bool:
        """Is *record* still the current, live generation of its URL?

        Dispatch threads re-check this each loop so a retirement or a
        rejoin (which replaces the record) stops them promptly.
        """
        with self._lock:
            return (
                self._records.get(record.url) is record
                and record.state == LIVE
            )

    def counts(self) -> dict[str, int]:
        """Record counts by membership state (all states present)."""
        out = {LIVE: 0, SUSPECT: 0, RETIRED: 0}
        with self._lock:
            for record in self._records.values():
                out[record.state] += 1
        return out

    def live_count(self, timeout: float | None = None) -> int:
        """Non-retired workers currently answering their ``/healthz``.

        An active probe, not a lease read: ``/healthz`` callers want to
        know who answers *now*, including static workers that hold no
        lease.  Probes run outside the lock.
        """
        if timeout is None:
            timeout = self.probe_timeout
        with self._lock:
            clients = [
                record.client for record in self._records.values()
                if record.state != RETIRED
            ]
        return sum(1 for client in clients if client.healthy(timeout=timeout))

    def describe(self) -> list[dict[str, object]]:
        """Per-worker detail for ``/healthz`` / ``GET /workers``."""
        now = self._clock()
        rows: list[dict[str, object]] = []
        with self._lock:
            records = list(self._records.values())
        for record in records:
            breaker = record.breaker.snapshot()
            with self._lock:
                row: dict[str, object] = {
                    "url": record.url,
                    "state": record.state,
                    "static": record.static,
                    "heartbeats": record.heartbeats,
                    "breaker": breaker,
                }
                if not record.static and record.state != RETIRED:
                    row["lease_expires_in_seconds"] = round(
                        record.lease_expires - now, 3
                    )
            rows.append(row)
        rows.sort(key=lambda row: str(row["url"]))
        return rows

    # -- breaker wiring ------------------------------------------------------

    def _breaker_listener(self, url: str) -> Callable[[str, str], None]:
        """The transition hook wired into one worker's breaker."""

        def on_transition(old: str, new: str) -> None:
            emit_event(
                _BREAKER_EVENTS[new],
                level="warn" if new == "open" else "info",
                worker=url,
                previous=old,
            )
            self._set_breaker_gauge(url, BREAKER_STATE_CODES[new])

        return on_transition

    def _set_breaker_gauge(self, url: str, code: int) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.gauge("cluster.breaker_state", worker=url).set(code)


#: breaker state -> the event narrating a transition into it (declared
#: in the manifest so the soak grader keys on the same names)
_BREAKER_EVENTS = contracts.BREAKER_EVENT_BY_STATE

CLOSED_CODE = BREAKER_STATE_CODES["closed"]


def _normalise_url(url: str) -> str:
    if not isinstance(url, str) or not url.startswith(("http://", "https://")):
        raise InvalidParameterError(
            f"worker URL must be http(s), got {url!r}"
        )
    return url.rstrip("/")
