"""Cluster coordinator: shard fan-out, retry and merge (system S29).

``disc_all_cluster`` mirrors :func:`repro.core.parallel.disc_all_parallel`
with workers on the far side of HTTP instead of a local process pool:
1-sequences are counted locally, each remaining ``<(lam)>``-partition
becomes a :class:`~repro.cluster.payload.ShardPayload`, and the payloads
fan out over a :class:`WorkerPool` — largest first (cost-balanced), one
in-flight shard per worker.  The per-partition pattern maps, disjoint by
construction, merge back into one output on the coordinating thread.

Threading model: one dispatch thread per worker pops payloads, POSTs
them and parks the outcome on a notice queue; *all* bookkeeping —
metrics, events, checkpoint recording, span grafting — happens on the
coordinating thread that consumes the queue, because observations,
recorders and the ambient trace are context-variable scoped and the
checkpoint recorder is single-threaded by design.

Failure policy: a transport-level failure (dead worker, timeout) is
retryable — the shard goes back to the front of the queue for a
surviving worker (``cluster.shards_retried``) and counts only against
the failing worker, which is retired after ``max_worker_failures``
consecutive misses; a retryable *answer* (5xx) additionally charges the
shard's ``max_shard_attempts`` budget.  The run aborts with
:class:`~repro.exceptions.ClusterError` only when a shard exhausts
``max_shard_attempts``, a worker answers terminally, or no live
workers remain.  ClusterError is *terminal* to the service's job
supervisor: the coordinator already retried at shard granularity.
"""

from __future__ import annotations

import json
import queue
import threading
import urllib.error
import urllib.request
from collections import deque
from typing import Iterable, cast

from repro.cluster.payload import (
    PAYLOAD_CONTENT_TYPE,
    ShardPayload,
    decode_shard_result,
    members_digest,
)
from repro.core.cancel import active_token
from repro.core.checkpoint import active_recorder
from repro.core.counting import count_frequent_items
from repro.core.discall import DiscAllOutput
from repro.core.partition import Member
from repro.core.sequence import RawSequence
from repro.exceptions import ClusterError, DataFormatError, InvalidParameterError
from repro.faults import fault_point
from repro.mining.registry import (
    CANDIDATE_PRUNING,
    CUSTOMER_REDUCING,
    DATABASE_PARTITIONING,
    DISC,
    register_algorithm,
)
from repro.obs import RunReport, active
from repro.obs.context import Observation
from repro.obs.events import emit as emit_event
from repro.obs.trace_context import current_trace
from repro.obs.tracing import NoopTracer


class _ShardAttemptError(Exception):
    """One failed shard RPC, tagged with whether a retry can help.

    ``worker_fault`` marks connection-level failures (unreachable, reset,
    timed out): those count against the *worker's* failure budget only,
    not the shard's attempt budget — a dead worker re-trying its own
    requeued shard must not exhaust ``max_shard_attempts`` before the
    retirement check hands the shard to a surviving worker.
    """

    def __init__(
        self, message: str, retryable: bool, worker_fault: bool = False
    ) -> None:
        super().__init__(message)
        self.retryable = retryable
        self.worker_fault = worker_fault


class WorkerClient:
    """HTTP client for one worker's ``POST /shards`` endpoint."""

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise InvalidParameterError(
                f"worker URL must be http(s), got {base_url!r}"
            )
        if timeout <= 0:
            raise InvalidParameterError(f"timeout must be > 0, got {timeout}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    @property
    def name(self) -> str:
        return self.base_url

    def healthy(self, timeout: float = 2.0) -> bool:
        """One ``GET /healthz`` probe; False on any failure."""
        try:
            with urllib.request.urlopen(
                self.base_url + "/healthz", timeout=timeout
            ) as response:
                doc = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError):
            return False
        return isinstance(doc, dict) and doc.get("status") == "ok"

    def mine_shard(
        self, payload: ShardPayload, traceparent: str | None = None
    ) -> tuple[dict[RawSequence, int], RunReport | None]:
        """POST one payload; returns (patterns, worker report).

        Raises :class:`_ShardAttemptError` with ``retryable`` set from
        the failure class: transport errors and 5xx answers flagged
        retryable by the worker can succeed elsewhere; 4xx answers and
        malformed or foreign results cannot.
        """
        headers = {"Content-Type": PAYLOAD_CONTENT_TYPE}
        if traceparent is not None:
            headers["traceparent"] = traceparent
        request = urllib.request.Request(
            self.base_url + "/shards",
            data=payload.to_bytes(),
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            raise self._http_error(exc) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise _ShardAttemptError(
                f"worker {self.name} unreachable: {exc}",
                retryable=True, worker_fault=True,
            ) from exc
        try:
            doc = json.loads(body.decode("utf-8"))
            if not isinstance(doc, dict):
                raise DataFormatError("shard result must be a JSON object")
            lam, digest, patterns, report = decode_shard_result(doc)
        except (ValueError, DataFormatError) as exc:
            raise _ShardAttemptError(
                f"worker {self.name} returned a malformed shard result: {exc}",
                retryable=False,
            ) from exc
        if lam != payload.lam or digest != payload.digest:
            raise _ShardAttemptError(
                f"worker {self.name} answered for shard {lam}/{digest[:12]} "
                f"instead of {payload.lam}/{payload.digest[:12]}",
                retryable=False,
            )
        for raw in patterns:
            if not raw or not raw[0] or raw[0][0] != payload.lam:
                raise _ShardAttemptError(
                    f"worker {self.name} returned a pattern outside "
                    f"partition {payload.lam}",
                    retryable=False,
                )
        return patterns, report

    def _http_error(self, exc: urllib.error.HTTPError) -> _ShardAttemptError:
        """Translate an HTTP error answer, honouring the worker's verdict."""
        retryable = exc.code >= 500
        message = f"worker {self.name} answered {exc.code}"
        try:
            doc = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError, OSError):
            # a bare status without a readable body is still classified
            return _ShardAttemptError(message, retryable=retryable)
        error = doc.get("error", {}) if isinstance(doc, dict) else {}
        if isinstance(error, dict):
            if isinstance(error.get("retryable"), bool):
                retryable = bool(error["retryable"])
            if error.get("message"):
                message = f"{message}: {error['message']}"
        return _ShardAttemptError(message, retryable=retryable)


class WorkerPool:
    """A fixed set of workers the coordinator fans shards out to."""

    def __init__(
        self,
        urls: Iterable[str],
        timeout: float = 300.0,
        max_shard_attempts: int = 3,
        max_worker_failures: int = 3,
    ) -> None:
        self.clients = [WorkerClient(url, timeout=timeout) for url in urls]
        if not self.clients:
            raise InvalidParameterError("a worker pool needs at least one worker URL")
        if max_shard_attempts < 1:
            raise InvalidParameterError(
                f"max_shard_attempts must be >= 1, got {max_shard_attempts}"
            )
        if max_worker_failures < 1:
            raise InvalidParameterError(
                f"max_worker_failures must be >= 1, got {max_worker_failures}"
            )
        self.max_shard_attempts = max_shard_attempts
        self.max_worker_failures = max_worker_failures

    def __len__(self) -> int:
        return len(self.clients)

    @property
    def urls(self) -> list[str]:
        return [client.base_url for client in self.clients]

    def live_count(self, timeout: float = 2.0) -> int:
        """Workers currently answering ``GET /healthz``."""
        return sum(1 for client in self.clients if client.healthy(timeout=timeout))

    def run(
        self, payloads: Iterable[ShardPayload], traceparent: str | None = None
    ) -> "ShardRun":
        """Start one fan-out over *payloads*; consume ``run.notices``."""
        return ShardRun(self, list(payloads), traceparent)


#: notice kinds a ShardRun posts (first element of each tuple)
DISPATCHED = "dispatched"
SHARD_DONE = "done"
SHARD_RETRY = "retry"
WORKER_RETIRED = "retired"
RUN_FAILED = "failed"


class ShardRun:
    """One fan-out execution: dispatch threads feeding a notice queue.

    The pending deque is sorted by payload cost, largest first, so the
    heaviest partitions start immediately and the small ones level the
    tail.  Dispatch threads are daemons: ``close()`` stops new dispatch
    but does not interrupt an in-flight RPC — its eventual outcome is
    simply never consumed.
    """

    def __init__(
        self,
        pool: WorkerPool,
        payloads: list[ShardPayload],
        traceparent: str | None,
    ) -> None:
        self._pool = pool
        self._traceparent = traceparent
        self.notices: "queue.Queue[tuple[object, ...]]" = queue.Queue()
        self._wakeup = threading.Condition()
        self._pending = deque(  # guarded-by: _wakeup
            sorted(payloads, key=lambda payload: payload.cost(), reverse=True)
        )
        self._attempts: dict[int, int] = {}  # guarded-by: _wakeup
        self._remaining = len(payloads)  # guarded-by: _wakeup
        self._live = len(pool.clients)  # guarded-by: _wakeup
        self._aborted = False  # guarded-by: _wakeup
        self._threads = [
            threading.Thread(
                target=self._dispatch,
                args=(client,),
                name=f"shard-dispatch-{index}",
                daemon=True,
            )
            for index, client in enumerate(pool.clients)
        ]
        for thread in self._threads:
            thread.start()

    def close(self) -> None:
        """Stop dispatching new shards (idempotent)."""
        with self._wakeup:
            self._aborted = True
            self._wakeup.notify_all()

    # -- dispatch threads ----------------------------------------------------

    def _dispatch(self, client: WorkerClient) -> None:
        failures = 0
        while True:
            shard = self._next_shard()
            if shard is None:
                return
            self.notices.put((DISPATCHED, shard.lam, client.name))
            try:
                patterns, report = client.mine_shard(
                    shard, traceparent=self._traceparent
                )
            except _ShardAttemptError as exc:
                if not exc.retryable:
                    self._abort(
                        f"shard {shard.lam} failed terminally on "
                        f"{client.name}: {exc}"
                    )
                    return
                failures += 1
                self._requeue(
                    shard, client, str(exc),
                    count_attempt=not exc.worker_fault,
                )
                if failures >= self._pool.max_worker_failures:
                    self._retire(client, str(exc))
                    return
                continue
            failures = 0
            self._complete(shard, client, patterns, report)

    def _next_shard(self) -> ShardPayload | None:
        with self._wakeup:
            while True:
                if self._aborted or self._remaining == 0:
                    return None
                if self._pending:
                    return self._pending.popleft()
                self._wakeup.wait(0.1)

    def _requeue(
        self,
        shard: ShardPayload,
        client: WorkerClient,
        message: str,
        count_attempt: bool = True,
    ) -> None:
        with self._wakeup:
            attempts = self._attempts.get(shard.lam, 0)
            if count_attempt:
                attempts += 1
                self._attempts[shard.lam] = attempts
            exhausted = attempts >= self._pool.max_shard_attempts
            if not exhausted:
                self._pending.appendleft(shard)
                self._wakeup.notify_all()
        if exhausted:
            self._abort(
                f"shard {shard.lam} failed {attempts} times, "
                f"last on {client.name}: {message}"
            )
        else:
            self.notices.put((SHARD_RETRY, shard.lam, client.name, message))

    def _retire(self, client: WorkerClient, message: str) -> None:
        with self._wakeup:
            self._live -= 1
            stalled = self._live == 0 and self._remaining > 0
        self.notices.put((WORKER_RETIRED, client.name, message))
        if stalled:
            self._abort(
                f"no live workers remain ({client.name} retired last: {message})"
            )

    def _complete(
        self,
        shard: ShardPayload,
        client: WorkerClient,
        patterns: dict[RawSequence, int],
        report: RunReport | None,
    ) -> None:
        with self._wakeup:
            self._remaining -= 1
            if self._remaining == 0:
                self._wakeup.notify_all()
        self.notices.put((SHARD_DONE, shard.lam, client.name, patterns, report))

    def _abort(self, message: str) -> None:
        with self._wakeup:
            already = self._aborted
            self._aborted = True
            self._wakeup.notify_all()
        if not already:
            self.notices.put((RUN_FAILED, message))


def _absorb_worker_report(obs: Observation, report: RunReport) -> None:
    """Fold one worker's report into the coordinating observation.

    Counters add into the run's registry, so the job-wide RunReport (and
    the service registry it is later absorbed into) covers every worker;
    the worker's span tree is grafted under a ``shard.report`` wrapper,
    but only when a real tracer is active — the no-op tracer's shared
    record must never be mutated.
    """
    for entry in report.metrics.values():
        if entry.get("type") != "counter":
            continue
        name = entry.get("name")
        value = entry.get("value")
        if not isinstance(name, str) or not isinstance(value, int):
            continue
        labels = entry.get("labels")
        label_map = dict(labels) if isinstance(labels, dict) else {}
        obs.metrics.counter(name, **label_map).add(value)
    if obs.enabled and report.spans and not isinstance(obs.tracer, NoopTracer):
        with obs.tracer.span("shard.report") as record:
            record.children.extend(report.spans)


def disc_all_cluster(
    members: Iterable[Member],
    delta: int,
    pool: WorkerPool,
    bilevel: bool = True,
    reduce: bool = True,
    backend: str = "table",
) -> DiscAllOutput:
    """DISC-all with first-level partitions mined on cluster workers.

    Returns the same pattern map as :func:`repro.core.discall.disc_all`
    on the same members/delta (asserted by the tests).  Checkpoint and
    cancel wiring matches ``disc_all_parallel``: the recorder sees
    ``partition_done`` for every merged shard on this thread, completed
    partitions are skipped on resume, and the cancel token is polled
    between notices — so service journaling, crash recovery and partial
    results work unchanged with ``algorithm="disc-all-cluster"``.
    """
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    obs = active()
    members = list(members)
    out = DiscAllOutput()
    frequent_items = count_frequent_items(members, delta)
    obs.metrics.counter("counting.frequent", k=1).add(len(frequent_items))
    for item, count in frequent_items.items():
        out.patterns[((item,),)] = count
    item_set = frozenset(frequent_items)

    token = active_token()
    recorder = active_recorder()
    recorder.attach(out.patterns)

    digest = members_digest(members)
    options = {"backend": backend, "bilevel": bilevel, "reduce": reduce}
    shard_costs = obs.metrics.histogram("cluster.shard_cost")
    payloads: list[ShardPayload] = []
    # repro: allow[DISC002] — scalar int items, not sequences
    for lam in sorted(frequent_items):
        token.checkpoint()
        if recorder.should_skip(lam):
            continue  # already mined by the run this one resumes
        group = [
            (cid, seq)
            for cid, seq in members
            if any(lam in txn for txn in seq)
        ]
        payload = ShardPayload.create(
            lam, delta, group, item_set,
            options=options, database_digest=digest,
        )
        shard_costs.record(payload.cost())
        payloads.append(payload)
    out.stats.first_level_partitions = len(payloads)

    dispatched = obs.metrics.counter("cluster.shards_dispatched")
    retried = obs.metrics.counter("cluster.shards_retried")
    failed = obs.metrics.counter("cluster.shards_failed")
    merged = obs.metrics.counter("cluster.shards_merged")

    # Shard RPCs propagate the job's trace as a child span context, so
    # every worker's spans and events share the submitting trace id.
    trace = current_trace()
    traceparent = trace.child().to_traceparent() if trace is not None else None

    run = pool.run(payloads, traceparent=traceparent)
    done = 0
    try:
        with obs.tracer.span(
            "cluster.map", shards=len(payloads), workers=len(pool)
        ):
            while done < len(payloads):
                token.checkpoint()
                try:
                    notice = run.notices.get(timeout=0.25)
                except queue.Empty:
                    continue
                kind = notice[0]
                if kind == DISPATCHED:
                    _, lam, worker = notice
                    dispatched.add(1)
                    emit_event("shard.dispatched", lam=lam, worker=worker)
                elif kind == SHARD_RETRY:
                    _, lam, worker, message = notice
                    retried.add(1)
                    emit_event(
                        "shard.retried", level="warn",
                        lam=lam, worker=worker, reason=message,
                    )
                elif kind == WORKER_RETIRED:
                    _, worker, message = notice
                    emit_event(
                        "worker.retired", level="warn",
                        worker=worker, reason=message,
                    )
                elif kind == SHARD_DONE:
                    _, lam, worker = notice[:3]
                    patterns = cast("dict[RawSequence, int]", notice[3])
                    report = cast("RunReport | None", notice[4])
                    fault_point("disc.partition")
                    out.patterns.update(patterns)
                    recorder.partition_done(cast(int, lam))
                    done += 1
                    merged.add(1)
                    if report is not None:
                        _absorb_worker_report(obs, report)
                    emit_event(
                        "shard.completed",
                        lam=lam, worker=worker, patterns=len(patterns),
                    )
                else:  # RUN_FAILED
                    _, message = notice
                    failed.add(1)
                    emit_event("shard.failed", level="error", reason=message)
                    raise ClusterError(str(message))
    finally:
        run.close()
    return out


def register_cluster_algorithm(
    pool: WorkerPool, name: str = "disc-all-cluster"
) -> None:
    """Register ``disc-all-cluster`` bound to *pool* (resumable).

    Re-registration replaces a previous pool binding: the coordinator
    process owns the name, and each ``repro serve --role coordinator``
    invocation binds it to that server's pool.
    """

    def _cluster(
        members: Iterable[Member], delta: int, **options: object
    ) -> dict[RawSequence, int]:
        return disc_all_cluster(members, delta, pool=pool, **options).patterns  # type: ignore[arg-type]

    register_algorithm(
        name,
        _cluster,
        replace=True,
        strategies={CANDIDATE_PRUNING, DATABASE_PARTITIONING, CUSTOMER_REDUCING, DISC},
        resumable=True,
    )
