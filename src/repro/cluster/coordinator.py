"""Cluster coordinator: shard fan-out, retry, degrade and merge (system S29).

``disc_all_cluster`` mirrors :func:`repro.core.parallel.disc_all_parallel`
with workers on the far side of HTTP instead of a local process pool:
1-sequences are counted locally, each remaining ``<(lam)>``-partition
becomes a :class:`~repro.cluster.payload.ShardPayload`, and the payloads
fan out over a :class:`WorkerPool` — largest first (cost-balanced), one
in-flight shard per worker.  The per-partition pattern maps, disjoint by
construction, merge back into one output on the coordinating thread.

Threading model: one dispatch thread per *dispatchable* worker pops
payloads, POSTs them and parks the outcome on a notice queue; *all*
bookkeeping — metrics, events, checkpoint recording, span grafting —
happens on the coordinating thread that consumes the queue, because
observations, recorders and the ambient trace are context-variable
scoped and the checkpoint recorder is single-threaded by design.  The
worker set is no longer frozen at start: the coordinating loop calls
:meth:`ShardRun.sync_workers` every poll tick, spawning a dispatch
thread for any worker that joined the pool's
:class:`~repro.cluster.membership.WorkerMembership` mid-job (or whose
circuit breaker became ready again) — a freshly registered worker
starts draining the pending queue with no restart.

Failure policy: a transport-level failure (dead worker, timeout) is
retryable — the shard goes back to the front of the queue
(``cluster.shards_retried``) and counts only against the failing
worker's :class:`~repro.cluster.breaker.CircuitBreaker`; a retryable
*answer* (5xx) additionally charges the shard's ``max_shard_attempts``
budget.  A breaker that opens stops that worker's dispatch thread; the
half-open probe is re-admitted by ``sync_workers`` after the backoff.
When *nothing* can dispatch — every worker retired or open, no RPC in
flight — the run is **stalled**: after ``degrade_after`` seconds the
coordinator degrades gracefully, mining the remaining shards locally
through the same checkpoint recorder (``cluster.degraded``,
``cluster.shards_mined_locally``) so the job still completes
byte-identical, just slower.  The run aborts with
:class:`~repro.exceptions.ClusterError` only when a shard exhausts
``max_shard_attempts``, a worker answers terminally, or degradation is
disabled (``degrade=False``) while stalled.  ClusterError is *terminal*
to the service's job supervisor: the coordinator already retried at
shard granularity.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass
from typing import Iterable, cast

from repro import contracts
from repro.cluster.breaker import BreakerConfig
from repro.cluster.membership import WorkerMembership, WorkerRecord
from repro.cluster.payload import (
    PAYLOAD_CONTENT_TYPE,
    ShardPayload,
    decode_shard_result,
    members_digest,
)
from repro.cluster.payload import mine_shard as mine_shard_locally
from repro.core.cancel import active_token
from repro.core.checkpoint import active_recorder
from repro.core.counting import count_frequent_items
from repro.core.discall import DiscAllOutput
from repro.core.partition import Member
from repro.core.sequence import RawSequence
from repro.exceptions import ClusterError, DataFormatError, InvalidParameterError
from repro.faults import fault_point
from repro.mining.registry import (
    CANDIDATE_PRUNING,
    CUSTOMER_REDUCING,
    DATABASE_PARTITIONING,
    DISC,
    register_algorithm,
)
from repro.obs import RunReport, active
from repro.obs.context import Observation
from repro.obs.events import emit as emit_event
from repro.obs.trace_context import current_trace
from repro.obs.tracing import NoopTracer


@dataclass(frozen=True, slots=True)
class ShardTimeout:
    """A shard RPC deadline that scales with payload size.

    One fixed timeout misclassifies: a huge skewed partition can take
    minutes on a healthy worker (a false "dead worker"), while a tiny
    shard on a truly dead one should fail fast.  The deadline for a
    payload is ``base + per_member * len(payload.members)``, so cost
    buys time and small shards keep a tight leash.
    """

    base: float = 300.0
    per_member: float = 0.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise InvalidParameterError(f"timeout must be > 0, got {self.base}")
        if self.per_member < 0:
            raise InvalidParameterError(
                f"per-member timeout must be >= 0, got {self.per_member}"
            )

    @classmethod
    def fixed(cls, seconds: float) -> "ShardTimeout":
        """The pre-scaling behaviour: one deadline for every shard."""
        return cls(base=float(seconds), per_member=0.0)

    def for_payload(self, payload: ShardPayload) -> float:
        return self.base + self.per_member * len(payload.members)


class _ShardAttemptError(Exception):
    """One failed shard RPC, tagged with whether a retry can help.

    ``worker_fault`` marks connection-level failures (unreachable, reset,
    timed out): those count against the *worker's* circuit breaker only,
    not the shard's attempt budget — a dead worker re-trying its own
    requeued shard must not exhaust ``max_shard_attempts`` before its
    breaker opens and hands the shard to a surviving worker.
    """

    def __init__(
        self, message: str, retryable: bool, worker_fault: bool = False
    ) -> None:
        super().__init__(message)
        self.retryable = retryable
        self.worker_fault = worker_fault


class WorkerClient:
    """HTTP client for one worker's ``POST /shards`` endpoint."""

    def __init__(
        self, base_url: str, timeout: float | ShardTimeout = 300.0
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise InvalidParameterError(
                f"worker URL must be http(s), got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = (
            timeout if isinstance(timeout, ShardTimeout)
            else ShardTimeout.fixed(timeout)
        )

    @property
    def name(self) -> str:
        return self.base_url

    def healthy(self, timeout: float = 2.0) -> bool:
        """One ``GET /healthz`` probe; False on any failure."""
        try:
            with urllib.request.urlopen(
                self.base_url + "/healthz", timeout=timeout
            ) as response:
                doc = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError):
            return False
        return isinstance(doc, dict) and doc.get("status") == "ok"

    def mine_shard(
        self, payload: ShardPayload, traceparent: str | None = None
    ) -> tuple[dict[RawSequence, int], RunReport | None]:
        """POST one payload; returns (patterns, worker report).

        Raises :class:`_ShardAttemptError` with ``retryable`` set from
        the failure class: transport errors and 5xx answers flagged
        retryable by the worker can succeed elsewhere; 4xx answers and
        malformed or foreign results cannot.
        """
        headers = {"Content-Type": PAYLOAD_CONTENT_TYPE}
        if traceparent is not None:
            headers["traceparent"] = traceparent
        request = urllib.request.Request(
            self.base_url + "/shards",
            data=payload.to_bytes(),
            headers=headers,
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout.for_payload(payload)
            ) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            raise self._http_error(exc) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise _ShardAttemptError(
                f"worker {self.name} unreachable: {exc}",
                retryable=True, worker_fault=True,
            ) from exc
        try:
            doc = json.loads(body.decode("utf-8"))
            if not isinstance(doc, dict):
                raise DataFormatError("shard result must be a JSON object")
            lam, digest, patterns, report = decode_shard_result(doc)
        except (ValueError, DataFormatError) as exc:
            raise _ShardAttemptError(
                f"worker {self.name} returned a malformed shard result: {exc}",
                retryable=False,
            ) from exc
        if lam != payload.lam or digest != payload.digest:
            raise _ShardAttemptError(
                f"worker {self.name} answered for shard {lam}/{digest[:12]} "
                f"instead of {payload.lam}/{payload.digest[:12]}",
                retryable=False,
            )
        for raw in patterns:
            if not raw or not raw[0] or raw[0][0] != payload.lam:
                raise _ShardAttemptError(
                    f"worker {self.name} returned a pattern outside "
                    f"partition {payload.lam}",
                    retryable=False,
                )
        return patterns, report

    def _http_error(self, exc: urllib.error.HTTPError) -> _ShardAttemptError:
        """Translate an HTTP error answer, honouring the worker's verdict."""
        retryable = contracts.retryable_for_status(exc.code)
        message = f"worker {self.name} answered {exc.code}"
        try:
            doc = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError, OSError):
            # a bare status without a readable body is still classified
            return _ShardAttemptError(message, retryable=retryable)
        error = doc.get("error", {}) if isinstance(doc, dict) else {}
        if isinstance(error, dict):
            if isinstance(error.get("retryable"), bool):
                retryable = bool(error["retryable"])
            if error.get("message"):
                message = f"{message}: {error['message']}"
        return _ShardAttemptError(message, retryable=retryable)


class WorkerPool:
    """The coordinator's worker set plus its dispatch/degradation policy.

    Workers live in a :class:`WorkerMembership` lease table: URLs given
    here are registered *statically* (no heartbeat lease, health ruled
    by their breakers alone), and more workers may join at runtime via
    ``POST /workers`` → :meth:`WorkerMembership.register`.  The pool may
    start empty (``allow_empty=True``, as ``repro serve`` does when all
    workers self-register) — a run that finds nobody to dispatch to
    degrades to local mining after ``degrade_after`` seconds unless
    ``degrade=False`` demands a hard :class:`ClusterError` instead.

    ``max_worker_failures`` is the breaker's failure threshold:
    that many consecutive transport/5xx failures stop dispatch to the
    worker until its half-open probe succeeds.
    """

    def __init__(
        self,
        urls: Iterable[str] = (),
        timeout: float | ShardTimeout = 300.0,
        max_shard_attempts: int = 3,
        max_worker_failures: int = 3,
        breaker_config: BreakerConfig | None = None,
        lease_seconds: float = 15.0,
        retire_grace: float | None = None,
        probe_timeout: float = 2.0,
        degrade: bool = True,
        degrade_after: float = 5.0,
        allow_empty: bool = False,
    ) -> None:
        if max_shard_attempts < 1:
            raise InvalidParameterError(
                f"max_shard_attempts must be >= 1, got {max_shard_attempts}"
            )
        if max_worker_failures < 1:
            raise InvalidParameterError(
                f"max_worker_failures must be >= 1, got {max_worker_failures}"
            )
        if degrade_after < 0:
            raise InvalidParameterError(
                f"degrade_after must be >= 0, got {degrade_after}"
            )
        self.shard_timeout = (
            timeout if isinstance(timeout, ShardTimeout)
            else ShardTimeout.fixed(timeout)
        )
        self.max_shard_attempts = max_shard_attempts
        self.max_worker_failures = max_worker_failures
        self.degrade = degrade
        self.degrade_after = degrade_after
        self.membership: WorkerMembership[WorkerClient] = WorkerMembership(
            client_factory=self._make_client,
            lease_seconds=lease_seconds,
            retire_grace=retire_grace,
            probe_timeout=probe_timeout,
            breaker_config=(
                breaker_config
                or BreakerConfig(failure_threshold=max_worker_failures)
            ),
        )
        urls = list(urls)
        if not urls and not allow_empty:
            raise InvalidParameterError(
                "a worker pool needs at least one worker URL"
            )
        for url in urls:
            self.membership.register(url, static=True)

    def _make_client(self, url: str) -> WorkerClient:
        return WorkerClient(url, timeout=self.shard_timeout)

    def __len__(self) -> int:
        return len(self.membership)

    @property
    def urls(self) -> list[str]:
        return list(self.membership)

    def live_count(self, timeout: float = 2.0) -> int:
        """Workers currently answering ``GET /healthz``."""
        return self.membership.live_count(timeout=timeout)

    def close(self) -> None:
        """Stop the membership reaper thread, if one was started."""
        self.membership.stop()

    def run(
        self, payloads: Iterable[ShardPayload], traceparent: str | None = None
    ) -> "ShardRun":
        """Start one fan-out over *payloads*; consume ``run.notices``."""
        return ShardRun(self, list(payloads), traceparent)


#: notice kinds a ShardRun posts (first element of each tuple)
DISPATCHED = "dispatched"
SHARD_DONE = "done"
SHARD_RETRY = "retry"
RUN_FAILED = "failed"


class ShardRun:
    """One fan-out execution: dispatch threads feeding a notice queue.

    The pending deque is sorted by payload cost, largest first, so the
    heaviest partitions start immediately and the small ones level the
    tail.  Dispatch threads are spawned per dispatchable worker by
    :meth:`sync_workers` — called again on every coordinating-loop tick,
    so workers that join mid-run (or whose breaker backoff elapses) pick
    up pending shards immediately.  Threads are daemons: ``close()``
    stops new dispatch but does not interrupt an in-flight RPC — its
    eventual outcome is simply never consumed; :meth:`join` bounds the
    wait for them at shutdown.
    """

    def __init__(
        self,
        pool: WorkerPool,
        payloads: list[ShardPayload],
        traceparent: str | None,
    ) -> None:
        self._pool = pool
        self._traceparent = traceparent
        self.notices: "queue.Queue[tuple[object, ...]]" = queue.Queue()
        self._wakeup = threading.Condition()
        self._pending = deque(  # guarded-by: _wakeup
            sorted(payloads, key=lambda payload: payload.cost(), reverse=True)
        )
        self._attempts: dict[int, int] = {}  # guarded-by: _wakeup
        self._remaining = len(payloads)  # guarded-by: _wakeup
        self._in_flight = 0  # guarded-by: _wakeup
        self._aborted = False  # guarded-by: _wakeup
        # coordinating-thread only: worker url -> its dispatch thread
        self._threads: dict[str, threading.Thread] = {}
        self.sync_workers()

    def close(self) -> None:
        """Stop dispatching new shards (idempotent)."""
        with self._wakeup:
            self._aborted = True
            self._wakeup.notify_all()

    # -- coordinating-thread control ----------------------------------------

    def sync_workers(self) -> int:
        """Spawn dispatch threads for newly dispatchable workers.

        Called from the coordinating thread on every poll tick.  A
        worker gets (at most) one live thread; a worker that joined the
        membership mid-run, or whose breaker left the open state, gets a
        thread here and starts pulling from the pending queue.  Returns
        the number of threads spawned.
        """
        with self._wakeup:
            if self._aborted or self._remaining == 0:
                return 0
        spawned = 0
        for record in self._pool.membership.dispatch_candidates():
            thread = self._threads.get(record.url)
            if thread is not None and thread.is_alive():
                continue
            thread = threading.Thread(
                target=self._dispatch,
                args=(record,),
                name=f"shard-dispatch-{record.url}",
                daemon=True,
            )
            self._threads[record.url] = thread
            thread.start()
            spawned += 1
        return spawned

    def stalled(self) -> bool:
        """Pending shards with nothing able to move them.

        True when work remains but no RPC is in flight and every
        dispatch thread has exited (breakers open, workers retired).
        The coordinating loop degrades to local mining when this holds
        for ``degrade_after`` seconds.
        """
        alive = any(thread.is_alive() for thread in self._threads.values())
        if alive:
            return False
        with self._wakeup:
            return (
                not self._aborted
                and self._remaining > 0
                and bool(self._pending)
                and self._in_flight == 0
            )

    def take_local(self) -> ShardPayload | None:
        """Pop one pending shard for the coordinator to mine itself.

        Takes from the *cheap* end of the cost-sorted deque: if a worker
        rejoins mid-degradation its thread keeps draining the expensive
        end, and the slower local miner levels the tail.
        """
        with self._wakeup:
            if self._aborted or not self._pending:
                return None
            return self._pending.pop()

    def local_done(self, shard: ShardPayload) -> None:
        """Account one locally mined shard (no notice: same thread)."""
        with self._wakeup:
            self._remaining -= 1
            if self._remaining == 0:
                self._wakeup.notify_all()

    def pending_count(self) -> int:
        with self._wakeup:
            return len(self._pending)

    def join(self, timeout: float = 5.0) -> bool:
        """Join all dispatch threads; True when every one has exited.

        ``close()`` first, then join: woken waiters observe the abort
        and exit; only a thread blocked in an in-flight RPC can keep the
        grace period busy, and it is a daemon — False just means the
        caller should not wait longer.
        """
        deadline = time.monotonic() + timeout
        for thread in list(self._threads.values()):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
        return not any(
            thread.is_alive() for thread in self._threads.values()
        )

    # -- dispatch threads ----------------------------------------------------

    def _dispatch(self, record: WorkerRecord[WorkerClient]) -> None:
        membership = self._pool.membership
        while True:
            if not self._await_work():
                return
            if not membership.dispatch_allowed(record):
                return  # retired, or replaced by a rejoined generation
            if not record.breaker.allow():
                return  # open: sync_workers re-probes after the backoff
            shard = self._take_shard()
            if shard is None:
                # lost the pop race (or the run just finished): hand a
                # half-open probe slot back so the breaker cannot wedge
                record.breaker.cancel_probe()
                continue
            self.notices.put((DISPATCHED, shard.lam, record.url))
            try:
                patterns, report = record.client.mine_shard(
                    shard, traceparent=self._traceparent
                )
            except _ShardAttemptError as exc:
                if not exc.retryable:
                    self._abandon(shard)
                    self._abort(
                        f"shard {shard.lam} failed terminally on "
                        f"{record.url}: {exc}"
                    )
                    return
                record.breaker.record_failure()
                self._requeue(
                    shard, record.url, str(exc),
                    count_attempt=not exc.worker_fault,
                )
                continue
            record.breaker.record_success()
            self._complete(shard, record.url, patterns, report)

    def _await_work(self) -> bool:
        """Park until a shard is (probably) available; False when done."""
        with self._wakeup:
            while True:
                if self._aborted or self._remaining == 0:
                    return False
                if self._pending:
                    return True
                self._wakeup.wait(0.1)

    def _take_shard(self) -> ShardPayload | None:
        with self._wakeup:
            if self._aborted or not self._pending:
                return None
            self._in_flight += 1
            return self._pending.popleft()

    def _abandon(self, shard: ShardPayload) -> None:
        """Drop an in-flight shard that will never be requeued."""
        with self._wakeup:
            self._in_flight -= 1

    def _requeue(
        self,
        shard: ShardPayload,
        worker: str,
        message: str,
        count_attempt: bool = True,
    ) -> None:
        with self._wakeup:
            self._in_flight -= 1
            attempts = self._attempts.get(shard.lam, 0)
            if count_attempt:
                attempts += 1
                self._attempts[shard.lam] = attempts
            exhausted = attempts >= self._pool.max_shard_attempts
            if not exhausted:
                self._pending.appendleft(shard)
                self._wakeup.notify_all()
        if exhausted:
            self._abort(
                f"shard {shard.lam} failed {attempts} times, "
                f"last on {worker}: {message}"
            )
        else:
            self.notices.put((SHARD_RETRY, shard.lam, worker, message))

    def _complete(
        self,
        shard: ShardPayload,
        worker: str,
        patterns: dict[RawSequence, int],
        report: RunReport | None,
    ) -> None:
        with self._wakeup:
            self._in_flight -= 1
            self._remaining -= 1
            if self._remaining == 0:
                self._wakeup.notify_all()
        self.notices.put((SHARD_DONE, shard.lam, worker, patterns, report))

    def _abort(self, message: str) -> None:
        with self._wakeup:
            already = self._aborted
            self._aborted = True
            self._wakeup.notify_all()
        if not already:
            self.notices.put((RUN_FAILED, message))


def _absorb_worker_report(obs: Observation, report: RunReport) -> None:
    """Fold one worker's report into the coordinating observation.

    Counters add into the run's registry, so the job-wide RunReport (and
    the service registry it is later absorbed into) covers every worker;
    the worker's span tree is grafted under a ``shard.report`` wrapper,
    but only when a real tracer is active — the no-op tracer's shared
    record must never be mutated.
    """
    for entry in report.metrics.values():
        if entry.get("type") != "counter":
            continue
        name = entry.get("name")
        value = entry.get("value")
        if not isinstance(name, str) or not isinstance(value, int):
            continue
        labels = entry.get("labels")
        label_map = dict(labels) if isinstance(labels, dict) else {}
        obs.metrics.counter(name, **label_map).add(value)
    if obs.enabled and report.spans and not isinstance(obs.tracer, NoopTracer):
        with obs.tracer.span("shard.report") as record:
            record.children.extend(report.spans)


def disc_all_cluster(
    members: Iterable[Member],
    delta: int,
    pool: WorkerPool,
    bilevel: bool = True,
    reduce: bool = True,
    backend: str = "table",
) -> DiscAllOutput:
    """DISC-all with first-level partitions mined on cluster workers.

    Returns the same pattern map as :func:`repro.core.discall.disc_all`
    on the same members/delta (asserted by the tests).  Checkpoint and
    cancel wiring matches ``disc_all_parallel``: the recorder sees
    ``partition_done`` for every merged shard on this thread, completed
    partitions are skipped on resume, and the cancel token is polled
    between notices — so service journaling, crash recovery and partial
    results work unchanged with ``algorithm="disc-all-cluster"``.

    When the pool stalls (no dispatchable workers, nothing in flight)
    longer than ``pool.degrade_after``, remaining shards are mined
    *locally* on this thread through the identical merge path — the
    first-level partitions are self-contained, so the result is
    byte-identical no matter who mines each one.
    """
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    obs = active()
    members = list(members)
    out = DiscAllOutput()
    frequent_items = count_frequent_items(members, delta)
    obs.metrics.counter("counting.frequent", k=1).add(len(frequent_items))
    for item, count in frequent_items.items():
        out.patterns[((item,),)] = count
    item_set = frozenset(frequent_items)

    token = active_token()
    recorder = active_recorder()
    recorder.attach(out.patterns)

    digest = members_digest(members)
    options = {"backend": backend, "bilevel": bilevel, "reduce": reduce}
    shard_costs = obs.metrics.histogram("cluster.shard_cost")
    payloads: list[ShardPayload] = []
    # repro: allow[DISC002] — scalar int items, not sequences
    for lam in sorted(frequent_items):
        token.checkpoint()
        if recorder.should_skip(lam):
            continue  # already mined by the run this one resumes
        group = [
            (cid, seq)
            for cid, seq in members
            if any(lam in txn for txn in seq)
        ]
        payload = ShardPayload.create(
            lam, delta, group, item_set,
            options=options, database_digest=digest,
        )
        shard_costs.record(payload.cost())
        payloads.append(payload)
    out.stats.first_level_partitions = len(payloads)

    dispatched = obs.metrics.counter("cluster.shards_dispatched")
    retried = obs.metrics.counter("cluster.shards_retried")
    failed = obs.metrics.counter("cluster.shards_failed")
    merged = obs.metrics.counter("cluster.shards_merged")
    mined_locally = obs.metrics.counter("cluster.shards_mined_locally")

    # Shard RPCs propagate the job's trace as a child span context, so
    # every worker's spans and events share the submitting trace id.
    trace = current_trace()
    traceparent = trace.child().to_traceparent() if trace is not None else None

    run = pool.run(payloads, traceparent=traceparent)
    done = 0
    degraded = False
    stall_since: float | None = None
    try:
        with obs.tracer.span(
            "cluster.map", shards=len(payloads), workers=len(pool)
        ):
            while done < len(payloads):
                token.checkpoint()
                run.sync_workers()
                try:
                    # poll fast while stalled: local mining should not
                    # pay the idle tick between every shard
                    notice = run.notices.get(
                        timeout=0.02 if stall_since is not None else 0.25
                    )
                except queue.Empty:
                    notice = None
                if notice is not None:
                    kind = notice[0]
                    if kind == DISPATCHED:
                        _, lam, worker = notice
                        dispatched.add(1)
                        emit_event("shard.dispatched", lam=lam, worker=worker)
                    elif kind == SHARD_RETRY:
                        _, lam, worker, message = notice
                        retried.add(1)
                        emit_event(
                            "shard.retried", level="warn",
                            lam=lam, worker=worker, reason=message,
                        )
                    elif kind == SHARD_DONE:
                        _, lam, worker = notice[:3]
                        patterns = cast("dict[RawSequence, int]", notice[3])
                        report = cast("RunReport | None", notice[4])
                        fault_point("disc.partition")
                        out.patterns.update(patterns)
                        recorder.partition_done(cast(int, lam))
                        done += 1
                        merged.add(1)
                        if report is not None:
                            _absorb_worker_report(obs, report)
                        emit_event(
                            "shard.completed",
                            lam=lam, worker=worker, patterns=len(patterns),
                        )
                    else:  # RUN_FAILED
                        _, message = notice
                        failed.add(1)
                        emit_event("shard.failed", level="error", reason=message)
                        raise ClusterError(str(message))
                if not run.stalled():
                    stall_since = None
                    continue
                now = time.monotonic()
                if stall_since is None:
                    stall_since = now
                # degradation is sticky for the run: once local mining
                # has started, a failed re-probe does not re-arm the grace
                if not degraded and now - stall_since < pool.degrade_after:
                    continue
                if not pool.degrade:
                    message = (
                        "no live workers remain and degraded mining is "
                        f"disabled ({run.pending_count()} shards pending)"
                    )
                    failed.add(1)
                    emit_event("shard.failed", level="error", reason=message)
                    raise ClusterError(message)
                if not degraded:
                    degraded = True
                    emit_event(
                        "cluster.degraded", level="warn",
                        reason="no dispatchable workers",
                        pending=run.pending_count(),
                    )
                shard = run.take_local()
                if shard is None:
                    continue
                fault_point("disc.partition")
                local_patterns = mine_shard_locally(shard)
                out.patterns.update(local_patterns)
                recorder.partition_done(shard.lam)
                run.local_done(shard)
                done += 1
                merged.add(1)
                mined_locally.add(1)
                emit_event(
                    "shard.completed",
                    lam=shard.lam, worker="local",
                    patterns=len(local_patterns),
                )
    finally:
        run.close()
    return out


def register_cluster_algorithm(
    pool: WorkerPool, name: str = "disc-all-cluster"
) -> None:
    """Register ``disc-all-cluster`` bound to *pool* (resumable).

    Re-registration replaces a previous pool binding: the coordinator
    process owns the name, and each ``repro serve --role coordinator``
    invocation binds it to that server's pool.
    """

    def _cluster(
        members: Iterable[Member], delta: int, **options: object
    ) -> dict[RawSequence, int]:
        return disc_all_cluster(members, delta, pool=pool, **options).patterns  # type: ignore[arg-type]

    register_algorithm(
        name,
        _cluster,
        replace=True,
        strategies={CANDIDATE_PRUNING, DATABASE_PARTITIONING, CUSTOMER_REDUCING, DISC},
        resumable=True,
    )
