"""Cluster mining: sharded coordinator/worker DISC-all (system S29).

The paper's first-level ``<(lam)>``-partitions are independent once
membership is known, which makes DISC embarrassingly shardable.  This
package turns that fact into a small cluster:

- :mod:`repro.cluster.payload` — the portable shard payload format
  (one partition's members + identity), JSON and binary round-trips.
- :mod:`repro.cluster.worker` — an HTTP worker that mines one payload
  per ``POST /shards`` request.
- :mod:`repro.cluster.coordinator` — membership computation, cost-
  balanced fan-out with shard-level retry, and the disjoint merge back
  into one result.

Only the payload API is re-exported here; import the coordinator and
worker submodules directly (they pull in the registry and service
layers, which in turn import this package for the payload format).
"""

from repro.cluster.payload import (
    PAYLOAD_CONTENT_TYPE,
    PAYLOAD_FORMAT,
    PAYLOAD_VERSION,
    RESULT_FORMAT,
    RESULT_VERSION,
    ShardPayload,
    decode_shard_result,
    encode_shard_result,
    members_digest,
    mine_shard,
)

__all__ = [
    "PAYLOAD_CONTENT_TYPE",
    "PAYLOAD_FORMAT",
    "PAYLOAD_VERSION",
    "RESULT_FORMAT",
    "RESULT_VERSION",
    "ShardPayload",
    "decode_shard_result",
    "encode_shard_result",
    "members_digest",
    "mine_shard",
]
