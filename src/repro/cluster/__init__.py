"""Cluster mining: sharded coordinator/worker DISC-all (system S29).

The paper's first-level ``<(lam)>``-partitions are independent once
membership is known, which makes DISC embarrassingly shardable.  This
package turns that fact into a small cluster:

- :mod:`repro.cluster.payload` — the portable shard payload format
  (one partition's members + identity), JSON and binary round-trips.
- :mod:`repro.cluster.worker` — an HTTP worker that mines one payload
  per ``POST /shards`` request.
- :mod:`repro.cluster.coordinator` — membership computation, cost-
  balanced fan-out with shard-level retry, graceful local degradation,
  and the disjoint merge back into one result.
- :mod:`repro.cluster.membership` — the coordinator's dynamic lease
  table: workers register/heartbeat at runtime, a reaper suspects and
  retires the silent ones.
- :mod:`repro.cluster.breaker` — per-worker circuit breakers gating
  shard dispatch.

The payload, breaker and membership APIs are re-exported here; import
the coordinator and worker submodules directly (they pull in the
registry and service layers, which in turn import this package).
"""

from repro.cluster.breaker import (
    BREAKER_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
)
from repro.cluster.membership import WorkerMembership, WorkerRecord
from repro.cluster.payload import (
    PAYLOAD_CONTENT_TYPE,
    PAYLOAD_FORMAT,
    PAYLOAD_VERSION,
    RESULT_FORMAT,
    RESULT_VERSION,
    ShardPayload,
    decode_shard_result,
    encode_shard_result,
    members_digest,
    mine_shard,
)

__all__ = [
    "BREAKER_STATE_CODES",
    "BreakerConfig",
    "CircuitBreaker",
    "WorkerMembership",
    "WorkerRecord",
    "PAYLOAD_CONTENT_TYPE",
    "PAYLOAD_FORMAT",
    "PAYLOAD_VERSION",
    "RESULT_FORMAT",
    "RESULT_VERSION",
    "ShardPayload",
    "decode_shard_result",
    "encode_shard_result",
    "members_digest",
    "mine_shard",
]
