"""Portable shard payloads: one first-level partition as a unit of work.

A :class:`ShardPayload` carries everything a worker needs to mine one
``<(lam)>``-partition — the member sequences that contain ``lam``, the
frequent-item universe, delta, the miner options and the identity of the
database it was cut from — with no other shared state.  The same bytes
work over the wire (``POST /shards``) and on disk (the out-of-core spill
format of ROADMAP direction 3).

Two serialisations round-trip losslessly and carry the same digest:

- ``to_dict``/``from_dict`` — self-describing JSON for debugging and
  manual submission (``{"format": "repro.shard-payload", "version": 1}``).
- ``to_bytes``/``from_bytes`` — the compact binary form: an interned,
  delta-encoded item vocabulary plus varint-packed member sequences,
  framed by a magic prefix and a SHA-256 trailer.  This is what the
  coordinator ships and what the local process pool pickles instead of
  raw ``(lam, group, ...)`` tuples (size delta in EXPERIMENTS.md).

The payload digest is the SHA-256 of the canonical binary body, so both
serialisations verify integrity on decode and a payload's identity is
independent of which wire form it travelled in.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, cast

from repro.core.discall import DiscAllOutput, _process_first_level
from repro.core.order import sort_key
from repro.core.partition import Member
from repro.core.sequence import RawSequence, canonical
from repro.exceptions import DataFormatError, InvalidParameterError
from repro.obs import RunReport

PAYLOAD_FORMAT = "repro.shard-payload"
PAYLOAD_VERSION = 1
#: magic prefix of the binary encoding
PAYLOAD_MAGIC = b"RSP0"
#: HTTP Content-Type announcing the binary encoding on ``POST /shards``
PAYLOAD_CONTENT_TYPE = "application/x-repro-shard"

RESULT_FORMAT = "repro.shard-result"
RESULT_VERSION = 1

#: miner options a payload may carry, with their defaults
_OPTION_DEFAULTS: dict[str, object] = {
    "backend": "table",
    "bilevel": True,
    "reduce": True,
}

_SHA256_BYTES = 32


def _write_uvarint(out: bytearray, value: int) -> None:
    """Append *value* as an unsigned LEB128 varint."""
    if value < 0:
        raise DataFormatError(f"cannot varint-encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _Reader:
    """Bounds-checked cursor over a binary payload body."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def uvarint(self) -> int:
        value = 0
        shift = 0
        while True:
            if self._pos >= len(self._data):
                raise DataFormatError(
                    "truncated shard payload: varint runs past the end"
                )
            byte = self._data[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise DataFormatError("malformed shard payload: varint too long")

    def take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise DataFormatError(
                "truncated shard payload: field runs past the end"
            )
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def exhausted(self) -> bool:
        return self._pos == len(self._data)


def _normalised_options(options: Mapping[str, object] | None) -> dict[str, object]:
    """Defaults overlaid with *options*; unknown keys are an error."""
    merged = dict(_OPTION_DEFAULTS)
    if options:
        unknown = set(options) - set(_OPTION_DEFAULTS)
        if unknown:
            known = ", ".join(sorted(_OPTION_DEFAULTS))  # repro: allow[DISC002] — option names, not sequences
            raise InvalidParameterError(
                f"unknown shard options {sorted(unknown)!r}; known: {known}"  # repro: allow[DISC002] — option names
            )
        merged.update(options)
    return merged


def _encode_body(
    lam: int,
    delta: int,
    members: tuple[Member, ...],
    frequent_items: frozenset[int],
    options: Mapping[str, object],
    database_digest: str,
) -> bytes:
    """Canonical binary body (the digest input) of a shard payload."""
    vocabulary = {lam}
    vocabulary.update(frequent_items)
    for _cid, seq in members:
        for txn in seq:
            vocabulary.update(txn)
    items = sorted(vocabulary)  # repro: allow[DISC002] — scalar int items, not sequences
    index = {item: local for local, item in enumerate(items)}

    out = bytearray()
    _write_uvarint(out, PAYLOAD_VERSION)
    _write_uvarint(out, delta)
    digest_bytes = database_digest.encode("ascii")
    _write_uvarint(out, len(digest_bytes))
    out.extend(digest_bytes)
    options_blob = json.dumps(
        dict(options), sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")
    _write_uvarint(out, len(options_blob))
    out.extend(options_blob)

    # Interned vocabulary: sorted global item ids, delta-encoded.
    _write_uvarint(out, len(items))
    previous = 0
    for item in items:
        _write_uvarint(out, item - previous)
        previous = item
    _write_uvarint(out, index[lam])

    frequent_local = sorted(index[item] for item in frequent_items)  # repro: allow[DISC002] — scalar indexes
    _write_uvarint(out, len(frequent_local))
    previous = 0
    for local in frequent_local:
        _write_uvarint(out, local - previous)
        previous = local

    _write_uvarint(out, len(members))
    for cid, seq in members:
        _write_uvarint(out, cid)
        _write_uvarint(out, len(seq))
        for txn in seq:
            _write_uvarint(out, len(txn))
            previous = 0
            for item in txn:  # canonical itemsets are sorted ascending
                local = index[item]
                _write_uvarint(out, local - previous)
                previous = local
    return bytes(out)


def _decode_body(body: bytes) -> ShardPayload:
    """Parse a canonical binary body back into a payload."""
    reader = _Reader(body)
    version = reader.uvarint()
    if version != PAYLOAD_VERSION:
        raise DataFormatError(
            f"unsupported shard payload version {version} "
            f"(supported: {PAYLOAD_VERSION})"
        )
    delta = reader.uvarint()
    try:
        database_digest = reader.take(reader.uvarint()).decode("ascii")
    except UnicodeDecodeError as exc:
        raise DataFormatError(
            "malformed shard payload: database digest is not ascii"
        ) from exc
    options_blob = reader.take(reader.uvarint())
    try:
        raw_options = json.loads(options_blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise DataFormatError(
            "malformed shard payload: options blob is not JSON"
        ) from exc
    if not isinstance(raw_options, dict):
        raise DataFormatError("malformed shard payload: options must be an object")
    options = _normalised_options(raw_options)

    items: list[int] = []
    value = 0
    for _ in range(reader.uvarint()):
        value += reader.uvarint()
        items.append(value)
    lam_index = reader.uvarint()
    if lam_index >= len(items):
        raise DataFormatError("malformed shard payload: lam outside the vocabulary")
    lam = items[lam_index]

    frequent: list[int] = []
    local = 0
    for _ in range(reader.uvarint()):
        local += reader.uvarint()
        if local >= len(items):
            raise DataFormatError(
                "malformed shard payload: frequent item outside the vocabulary"
            )
        frequent.append(items[local])

    members: list[Member] = []
    for _ in range(reader.uvarint()):
        cid = reader.uvarint()
        itemsets: list[tuple[int, ...]] = []
        for _ in range(reader.uvarint()):
            txn: list[int] = []
            local = 0
            for _ in range(reader.uvarint()):
                local += reader.uvarint()
                if local >= len(items):
                    raise DataFormatError(
                        "malformed shard payload: member item outside the vocabulary"
                    )
                txn.append(items[local])
            itemsets.append(tuple(txn))
        members.append((cid, tuple(itemsets)))
    if not reader.exhausted():
        raise DataFormatError("malformed shard payload: trailing bytes after members")

    return ShardPayload(
        lam=lam,
        delta=delta,
        members=tuple(members),
        frequent_items=frozenset(frequent),
        options=options,
        database_digest=database_digest,
        digest=hashlib.sha256(body).hexdigest(),
    )


@dataclass(frozen=True, slots=True)
class ShardPayload:
    """One ``<(lam)>``-partition, packaged for the wire or the disk.

    Build instances through :meth:`create` (which computes the digest)
    or one of the decoders; the constructor trusts its arguments.
    """

    lam: int
    delta: int
    members: tuple[Member, ...]
    frequent_items: frozenset[int]
    options: Mapping[str, object]
    database_digest: str
    digest: str

    @classmethod
    def create(
        cls,
        lam: int,
        delta: int,
        members: Iterable[Member],
        frequent_items: Iterable[int],
        options: Mapping[str, object] | None = None,
        database_digest: str = "",
    ) -> ShardPayload:
        """Build a payload and stamp its canonical digest."""
        if delta < 1:
            raise InvalidParameterError(f"delta must be >= 1, got {delta}")
        frozen_members = tuple(
            (int(cid), tuple(tuple(txn) for txn in seq)) for cid, seq in members
        )
        frozen_items = frozenset(frequent_items)
        merged = _normalised_options(options)
        body = _encode_body(
            lam, delta, frozen_members, frozen_items, merged, database_digest
        )
        return cls(
            lam=lam,
            delta=delta,
            members=frozen_members,
            frequent_items=frozen_items,
            options=merged,
            database_digest=database_digest,
            digest=hashlib.sha256(body).hexdigest(),
        )

    def cost(self) -> int:
        """Total item occurrences — the largest-first scheduling weight."""
        return sum(len(txn) for _cid, seq in self.members for txn in seq)

    def body(self) -> bytes:
        """The canonical binary body (the digest input)."""
        return _encode_body(
            self.lam, self.delta, self.members, self.frequent_items,
            self.options, self.database_digest,
        )

    def to_bytes(self) -> bytes:
        """Binary form: magic + body + raw SHA-256 trailer."""
        body = self.body()
        return PAYLOAD_MAGIC + body + hashlib.sha256(body).digest()

    @classmethod
    def from_bytes(cls, data: bytes) -> ShardPayload:
        """Decode and verify the binary form."""
        if not data.startswith(PAYLOAD_MAGIC):
            raise DataFormatError("not a shard payload: bad magic prefix")
        if len(data) < len(PAYLOAD_MAGIC) + _SHA256_BYTES:
            raise DataFormatError("truncated shard payload: missing digest trailer")
        body = data[len(PAYLOAD_MAGIC):-_SHA256_BYTES]
        trailer = data[-_SHA256_BYTES:]
        if hashlib.sha256(body).digest() != trailer:
            raise DataFormatError(
                "corrupt shard payload: body does not match its digest trailer"
            )
        return _decode_body(body)

    def to_dict(self) -> dict[str, object]:
        """Self-describing JSON document carrying the same digest."""
        return {
            "format": PAYLOAD_FORMAT,
            "version": PAYLOAD_VERSION,
            "lam": self.lam,
            "delta": self.delta,
            "database_digest": self.database_digest,
            "options": {key: self.options[key] for key in sorted(self.options)},  # repro: allow[DISC002] — option names
            "frequent_items": sorted(self.frequent_items),  # repro: allow[DISC002] — scalar int items
            "members": [
                [cid, [list(txn) for txn in seq]] for cid, seq in self.members
            ],
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> ShardPayload:
        """Decode the JSON document; verify its digest against the body."""
        if payload.get("format") != PAYLOAD_FORMAT:
            raise DataFormatError(
                f"not a shard payload document: format={payload.get('format')!r}"
            )
        if payload.get("version") != PAYLOAD_VERSION:
            raise DataFormatError(
                f"unsupported shard payload version {payload.get('version')!r} "
                f"(supported: {PAYLOAD_VERSION})"
            )
        try:
            data = cast("Mapping[str, Any]", payload)
            lam = int(data["lam"])
            delta = int(data["delta"])
            database_digest = str(data["database_digest"])
            options = data["options"]
            if not isinstance(options, Mapping):
                raise DataFormatError("shard payload options must be an object")
            members = tuple(
                (int(cid), canonical(seq)) for cid, seq in data["members"]
            )
            frequent_items = frozenset(
                int(item) for item in data["frequent_items"]
            )
        except DataFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise DataFormatError(f"malformed shard payload document: {exc}") from exc
        built = cls.create(
            lam, delta, members, frequent_items,
            options=options, database_digest=database_digest,
        )
        claimed = payload.get("digest")
        if claimed is not None and claimed != built.digest:
            raise DataFormatError(
                f"shard payload digest mismatch: document claims {claimed!r}, "
                f"body hashes to {built.digest!r}"
            )
        return built

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> ShardPayload:
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise DataFormatError(f"shard payload is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise DataFormatError("shard payload JSON must be an object")
        return cls.from_dict(payload)


def members_digest(members: Iterable[Member]) -> str:
    """SHA-256 over member sequences.

    Byte-compatible with
    :meth:`repro.db.database.SequenceDatabase.content_digest`, so a
    payload cut from ``db.members()`` carries the true database digest
    and checkpoint identities line up across coordinator and single-box
    runs.
    """
    hasher = hashlib.sha256()
    for _cid, seq in members:
        for txn in seq:
            hasher.update(b"(")
            for item in txn:
                hasher.update(b"%d," % item)
            hasher.update(b")")
        hasher.update(b";")
    return hasher.hexdigest()


def mine_shard(payload: ShardPayload) -> dict[RawSequence, int]:
    """Mine one payload's partition; returns its k>=2 pattern map.

    The ``((lam,),)`` 1-sequence entry is *not* included — exactly like
    the local pool workers, the coordinator counts 1-sequences itself —
    and every returned pattern starts with ``lam`` by construction.
    """
    out = DiscAllOutput()
    options = payload.options
    _process_first_level(
        payload.lam,
        list(payload.members),
        payload.delta,
        payload.frequent_items,
        bool(options["bilevel"]),
        bool(options["reduce"]),
        str(options["backend"]),
        out,
    )
    return out.patterns


def encode_shard_result(
    payload: ShardPayload,
    patterns: Mapping[RawSequence, int],
    report: RunReport | None = None,
    trace_id: str | None = None,
) -> dict[str, object]:
    """Wire document a worker answers ``POST /shards`` with."""
    doc: dict[str, object] = {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "lam": payload.lam,
        "payload_digest": payload.digest,
        "patterns": [
            [[list(txn) for txn in raw], patterns[raw]]
            for raw in sorted(patterns, key=sort_key)
        ],
    }
    if report is not None:
        doc["report"] = report.to_dict()
    if trace_id is not None:
        doc["trace_id"] = trace_id
    return doc


def decode_shard_result(
    doc: Mapping[str, object],
) -> tuple[int, str, dict[RawSequence, int], RunReport | None]:
    """Parse a shard-result document → (lam, payload digest, patterns, report)."""
    if doc.get("format") != RESULT_FORMAT:
        raise DataFormatError(
            f"not a shard result document: format={doc.get('format')!r}"
        )
    if doc.get("version") != RESULT_VERSION:
        raise DataFormatError(
            f"unsupported shard result version {doc.get('version')!r} "
            f"(supported: {RESULT_VERSION})"
        )
    try:
        data = cast("Mapping[str, Any]", doc)
        lam = int(data["lam"])
        payload_digest = str(data["payload_digest"])
        patterns = {
            canonical(raw): int(count) for raw, count in data["patterns"]
        }
    except DataFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise DataFormatError(f"malformed shard result document: {exc}") from exc
    raw_report = doc.get("report")
    report = None
    if raw_report is not None:
        if not isinstance(raw_report, Mapping):
            raise DataFormatError("shard result report must be an object")
        report = RunReport.from_dict(dict(raw_report))
    return lam, payload_digest, patterns, report
