"""Cluster worker: mines one shard payload per HTTP request (system S29).

A worker is deliberately stateless between requests — it holds no
databases and no job queue.  Every ``POST /shards`` carries a complete
:class:`~repro.cluster.payload.ShardPayload`; the worker mines it under
its own observation and answers with the partition's pattern map plus
the run's :class:`~repro.obs.RunReport`, which the coordinator folds
into the job-wide report.  Losing a worker therefore loses nothing but
in-flight work: the coordinator re-dispatches the shard elsewhere.

Endpoints::

    GET  /            endpoint index
    GET  /healthz     {"status": "ok", "role": "worker", ...}
    GET  /metrics     worker counters; JSON or Prometheus text
    POST /shards      mine one payload (binary or JSON encoding)

Tracing: an incoming ``traceparent`` header scopes the mining run, so
the worker's spans and the coordinator's job share one trace id; the
response echoes the header and carries ``trace_id`` in the body.

Errors: a malformed payload answers 400 with ``retryable: false`` (the
bytes will not improve on another worker); a body larger than the
worker's ``max_shard_bytes`` answers 413 with ``retryable: false``
*without reading it*; a mining failure answers 500 with ``retryable``
set from the service's retry classification, which the coordinator
honours when deciding between re-dispatch and abort.

Membership: a worker started with ``repro serve --role worker
--coordinator URL`` runs a :class:`CoordinatorLink` — it registers its
own base URL with the coordinator (``POST /workers``), renews the
heartbeat lease the coordinator granted on an interval, re-registers
whenever the coordinator answers 404 (lease lost — coordinator
restarted or reaped us), and deregisters on clean shutdown.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, quote, urlsplit

from repro.cluster.payload import (
    PAYLOAD_CONTENT_TYPE,
    ShardPayload,
    encode_shard_result,
    mine_shard,
)
from repro import contracts
from repro.exceptions import DataFormatError, InvalidParameterError, ReproError
from repro.obs import observation
from repro.obs.context import activated
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.trace_context import TraceContext, trace_scope

#: default request-body ceiling for ``POST /shards`` (64 MiB): large
#: enough for any realistic first-level partition, small enough that a
#: confused client cannot make the worker buffer arbitrary bytes
DEFAULT_MAX_SHARD_BYTES = 64 * 1024 * 1024


class ClusterWorker:
    """Shared state of one worker process: counters + uptime.

    Request handlers run on one thread per connection, so every counter
    update and snapshot goes through ``_lock``; the mining itself is
    lock-free (each request owns its payload and observation).
    """

    def __init__(self, max_shard_bytes: int = DEFAULT_MAX_SHARD_BYTES) -> None:
        if max_shard_bytes < 1:
            raise InvalidParameterError(
                f"max_shard_bytes must be >= 1, got {max_shard_bytes}"
            )
        self._lock = threading.Lock()
        self.metrics = MetricsRegistry()  # guarded-by: _lock
        self.started = time.monotonic()
        self.max_shard_bytes = max_shard_bytes

    def mine(self, payload: ShardPayload, trace: TraceContext | None) -> dict[str, object]:
        """Mine one payload under its own observation; returns the result doc."""
        with trace_scope(trace), activated(observation()) as obs:
            attrs: dict[str, object] = {
                "lam": payload.lam,
                "cost": payload.cost(),
            }
            if trace is not None:
                attrs["trace_id"] = trace.trace_id
            with obs.tracer.span("shard", **attrs):
                patterns = mine_shard(payload)
            # counted inside the observation as well, so the report the
            # coordinator absorbs carries this worker's contribution
            obs.metrics.counter("worker.shards_mined").add(1)
            obs.metrics.counter("worker.patterns_returned").add(len(patterns))
            report = obs.report()
        with self._lock:
            self.metrics.counter("worker.shards_mined").add(1)
            self.metrics.counter("worker.patterns_returned").add(len(patterns))
            self.metrics.histogram("worker.shard_cost").record(payload.cost())
        return encode_shard_result(
            payload,
            patterns,
            report=report,
            trace_id=trace.trace_id if trace is not None else None,
        )

    def record_failure(self) -> None:
        with self._lock:
            self.metrics.counter("worker.shards_failed").add(1)

    def health(self) -> dict[str, object]:
        with self._lock:
            mined = self.metrics.counter_total("worker.shards_mined")
            failed = self.metrics.counter_total("worker.shards_failed")
        return {
            "status": "ok",
            "role": "worker",
            "shards_mined": mined,
            "shards_failed": failed,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "max_shard_bytes": self.max_shard_bytes,
        }

    def metrics_snapshot(self) -> dict[str, dict[str, object]]:
        with self._lock:
            return self.metrics.snapshot()


class WorkerRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's ClusterWorker."""

    server: "WorkerHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        """Quiet by default: telemetry lives in /metrics, not stderr."""

    def _send_json(
        self,
        status: int,
        payload: dict[str, object],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, body: str, content_type: str = "text/plain"
    ) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    @property
    def worker(self) -> ClusterWorker:
        return self.server.worker

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        if not parts:
            self._send_json(200, _INDEX)
        elif parts == ["healthz"]:
            self._send_json(200, self.worker.health())
        elif parts == ["metrics"]:
            self._get_metrics(parse_qs(split.query))
        else:
            self._send_json(404, _NOT_FOUND)

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        parts = [part for part in urlsplit(self.path).path.split("/") if part]
        if parts == ["shards"]:
            self._post_shard()
        else:
            self._send_json(404, _NOT_FOUND)

    def _get_metrics(self, query: dict[str, list[str]]) -> None:
        values = query.get("format")
        fmt = values[-1] if values else None
        accept = self.headers.get("Accept") or ""
        if fmt is None and "text/plain" in accept:
            fmt = "prometheus"
        if fmt == "prometheus":
            self._send_text(
                200,
                render_prometheus(self.worker.metrics_snapshot()),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        else:
            self._send_json(200, {
                "format": "repro.service-metrics",
                "version": 1,
                "metrics": self.worker.metrics_snapshot(),
            })

    def _post_shard(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        limit = self.worker.max_shard_bytes
        if length > limit:
            # refuse before buffering a single byte; the unread body
            # poisons the keep-alive stream, so drop the connection too
            self.close_connection = True
            self.worker.record_failure()
            self._send_json(413, _error_doc(
                "payload_too_large",
                f"shard payload of {length} bytes exceeds this worker's "
                f"{limit}-byte limit",
                retryable=False,
            ))
            return
        raw = self.rfile.read(length) if length else b""
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        try:
            if content_type == PAYLOAD_CONTENT_TYPE:
                payload = ShardPayload.from_bytes(raw)
            else:
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise DataFormatError(
                        f"shard request body is not JSON: {exc}"
                    ) from exc
                if not isinstance(doc, dict):
                    raise DataFormatError("shard request body must be an object")
                payload = ShardPayload.from_dict(doc)
        except (DataFormatError, InvalidParameterError) as exc:
            self.worker.record_failure()
            self._send_json(400, _error_body("bad_payload", exc, retryable=False))
            return
        trace = TraceContext.from_traceparent(self.headers.get("traceparent"))
        try:
            result = self.worker.mine(payload, trace)
        except ReproError as exc:
            # Mining failed after a well-formed payload: report whether a
            # retry (on this or another worker) can help, using the same
            # taxonomy the service's job supervisor applies.
            self.worker.record_failure()
            self._send_json(
                500,
                _error_body(
                    contracts.wire_code_for(exc),
                    exc,
                    retryable=contracts.is_retryable(exc),
                ),
            )
            return
        headers = None
        if trace is not None:
            headers = {"traceparent": trace.to_traceparent()}
        self._send_json(200, result, headers=headers)


def _error_doc(code: str, message: str, retryable: bool) -> dict[str, object]:
    doc: dict[str, object] = {
        "error": {"code": code, "message": message, "retryable": retryable}
    }
    problems = contracts.validate_error_body(doc, require_retryable=True)
    assert not problems, problems  # the contract is ours to keep
    return doc


def _error_body(code: str, exc: Exception, retryable: bool) -> dict[str, object]:
    return _error_doc(code, str(exc), retryable)


_INDEX: dict[str, object] = {
    "service": "repro.cluster.worker",
    "endpoints": [
        "GET /healthz",
        "GET /metrics",
        "POST /shards",
    ],
}

_NOT_FOUND: dict[str, object] = {
    "error": {"code": "not_found", "message": "unknown endpoint"}
}


class WorkerHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a :class:`ClusterWorker`."""

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], worker: ClusterWorker) -> None:
        self.worker = worker
        super().__init__(address, WorkerRequestHandler)


def make_worker_server(
    host: str = "127.0.0.1", port: int = 8766, worker: ClusterWorker | None = None
) -> WorkerHTTPServer:
    """Bind (but do not start) a worker server; port 0 picks a free one."""
    return WorkerHTTPServer((host, port), worker or ClusterWorker())


class CoordinatorLink:
    """Worker-side membership: register, heartbeat, re-register, leave.

    Runs a daemon thread that keeps this worker's lease with the
    coordinator alive.  The heartbeat interval follows the lease the
    coordinator granted (a third of ``lease_seconds``, so two beats can
    be lost before suspicion) unless ``heartbeat_seconds`` pins it.  A
    404 from the heartbeat endpoint means the coordinator no longer
    knows us (restart, or the reaper retired us while we were
    partitioned) — the link transparently re-registers, which revives
    the membership record and makes the worker dispatchable again.
    """

    def __init__(
        self,
        coordinator_url: str,
        advertise_url: str,
        heartbeat_seconds: float | None = None,
        timeout: float = 5.0,
    ) -> None:
        for url in (coordinator_url, advertise_url):
            if not url.startswith(("http://", "https://")):
                raise InvalidParameterError(
                    f"URL must be http(s), got {url!r}"
                )
        if heartbeat_seconds is not None and heartbeat_seconds <= 0:
            raise InvalidParameterError(
                f"heartbeat_seconds must be > 0, got {heartbeat_seconds}"
            )
        self.coordinator_url = coordinator_url.rstrip("/")
        self.advertise_url = advertise_url.rstrip("/")
        self.timeout = timeout
        self._heartbeat_override = heartbeat_seconds
        self._lock = threading.Lock()
        self._lease_seconds = 15.0  # guarded-by: _lock
        self._registered = False  # guarded-by: _lock
        self._heartbeats = 0  # guarded-by: _lock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _post(self, path: str, doc: dict[str, object]) -> dict[str, object]:
        body = json.dumps(doc).encode("utf-8")
        request = urllib.request.Request(
            self.coordinator_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            answer = json.loads(response.read().decode("utf-8"))
        return answer if isinstance(answer, dict) else {}

    def register(self) -> bool:
        """One registration attempt; adopts the granted lease on success."""
        try:
            answer = self._post("/workers", {"url": self.advertise_url})
        except (urllib.error.URLError, OSError, ValueError):
            with self._lock:
                self._registered = False
            return False
        lease = answer.get("lease_seconds")
        with self._lock:
            self._registered = True
            if isinstance(lease, (int, float)) and lease > 0:
                self._lease_seconds = float(lease)
        return True

    def heartbeat(self) -> bool:
        """One lease renewal; re-registers on 404 (lease lost)."""
        try:
            self._post("/workers/heartbeat", {"url": self.advertise_url})
        except urllib.error.HTTPError as exc:
            exc.close()
            if exc.code == 404:
                return self.register()
            with self._lock:
                self._registered = False
            return False
        except (urllib.error.URLError, OSError, ValueError):
            with self._lock:
                self._registered = False
            return False
        with self._lock:
            self._registered = True
            self._heartbeats += 1
        return True

    def deregister(self) -> bool:
        """Best-effort graceful leave (``DELETE /workers?url=...``)."""
        request = urllib.request.Request(
            self.coordinator_url
            + "/workers?url="
            + quote(self.advertise_url, safe=""),
            method="DELETE",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
        except (urllib.error.URLError, OSError):
            return False
        with self._lock:
            self._registered = False
        return True

    def interval(self) -> float:
        """Seconds between heartbeats (a third of the granted lease)."""
        if self._heartbeat_override is not None:
            return self._heartbeat_override
        with self._lock:
            lease = self._lease_seconds
        return max(0.5, lease / 3.0)

    def status(self) -> dict[str, object]:
        """Link state for ``/healthz``."""
        with self._lock:
            return {
                "coordinator": self.coordinator_url,
                "registered": self._registered,
                "heartbeats": self._heartbeats,
                "lease_seconds": self._lease_seconds,
            }

    def start(self) -> None:
        """Register now (best effort) and start the heartbeat thread."""
        if self._thread is not None:
            return
        self.register()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._heartbeat_loop, name="coordinator-link", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop heartbeating and leave the coordinator's lease table."""
        thread = self._thread
        self._thread = None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        self.deregister()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.interval()):
            # heartbeat() already falls back to register() on 404, so
            # one call per tick covers renew, re-join and first contact
            self.heartbeat()
