"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidSequenceError(ReproError, ValueError):
    """A sequence violates the canonical form (empty itemsets, bad items)."""


class InvalidDatabaseError(ReproError, ValueError):
    """A sequence database is structurally invalid."""


class InvalidParameterError(ReproError, ValueError):
    """A mining or generation parameter is out of its valid range."""


class UnknownAlgorithmError(ReproError, KeyError):
    """The requested mining algorithm is not registered."""


class DataFormatError(ReproError, ValueError):
    """A file being read does not conform to the expected text format."""


class OperationCancelledError(ReproError):
    """A cooperative cancellation checkpoint observed a cancelled token.

    Raised from inside a mining run when the active
    :class:`repro.core.cancel.CancelToken` was cancelled or its deadline
    passed.  :func:`repro.mine` converts the unwind into a *partial*
    :class:`~repro.mining.result.MiningResult` (``complete=False``, with
    the patterns of every completed round and a resume checkpoint); the
    exception only reaches callers of the lower-level miners, or when no
    progress was recorded at all.
    """


class CheckpointMismatchError(ReproError):
    """A resume checkpoint does not fit the run it was offered to.

    The checkpoint's fingerprint (database digest, delta, algorithm,
    options) must match the new run exactly — resuming across a changed
    database or threshold would silently produce wrong patterns, so the
    mismatch is an error, never a warning.
    """


class InjectedFaultError(ReproError):
    """A deterministically injected fault fired (see :mod:`repro.faults`).

    Only ever raised by an armed :class:`~repro.faults.FaultPlan`; in
    production (disarmed) runs the fault sites are inert.  The service
    classifies it as *retryable*, like the infrastructure failures it
    stands in for.
    """


class ClusterError(ReproError):
    """A cluster mining run cannot make progress.

    Raised by the coordinator when a shard exhausts its retry budget,
    when a worker answers with a terminal (non-retryable) error, or when
    every worker has been retired while shards remain.  The service
    classifies it as *terminal*: the coordinator already performed its
    own shard-level retries across the pool, so restarting the whole job
    would only repeat them.
    """


class ShardOverlapError(ReproError, ValueError):
    """Two shard results claim the same pattern.

    First-level ``<(lam)>``-partitions are disjoint by construction, so
    overlapping shard pattern maps mean the shards were mis-built or a
    worker answered for the wrong partition.  Merging them would silently
    corrupt supports, so the overlap is an error, never a warning.
    """
