"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidSequenceError(ReproError, ValueError):
    """A sequence violates the canonical form (empty itemsets, bad items)."""


class InvalidDatabaseError(ReproError, ValueError):
    """A sequence database is structurally invalid."""


class InvalidParameterError(ReproError, ValueError):
    """A mining or generation parameter is out of its valid range."""


class UnknownAlgorithmError(ReproError, KeyError):
    """The requested mining algorithm is not registered."""


class DataFormatError(ReproError, ValueError):
    """A file being read does not conform to the expected text format."""


class OperationCancelledError(ReproError):
    """A cooperative cancellation checkpoint observed a cancelled token.

    Raised from inside a mining run when the active
    :class:`repro.core.cancel.CancelToken` was cancelled or its deadline
    passed; the run's partial state is discarded by the caller.
    """
