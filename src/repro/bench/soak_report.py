"""Schema and grading of the chaos-soak report (system S31).

``scripts/soak.py`` runs a timed, mixed-workload soak against a live
coordinator/worker cluster while killing and re-registering workers on a
schedule.  Everything it observes lands here, in one graded
``repro.soak-report`` JSON document, so CI (and a human reading the
artifact) gets a verdict, not a log dump.

The grading is three-valued per workload item:

``pass``
    the item behaved exactly as an unfaulted run would (job done and
    byte-identical to the single-box reference, cache hit served hot,
    overload rejected with backpressure);
``degraded``
    the item *completed correctly* but visibly leaned on the resilience
    machinery (shard retries, local-fallback mining, a cache hit that
    had to re-mine) — expected during fault windows, worth counting;
``fail``
    a wrong answer, a lost job, or an error where an answer was due.

Grades cover *behaviour under permitted weirdness*; the hard
**invariants** are separate booleans that may never break regardless of
how much chaos is injected: every accepted job reaches a terminal state,
mined pattern sets are byte-identical to the reference, the event log
validates, and no dispatch thread outlives its run.  A failed invariant
forces the overall verdict to ``fail`` even if every line graded pass.

This module is pure data-plumbing (no subprocesses, no sockets) so the
unit tests can exercise the grading and schema directly.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro import contracts

SOAK_FORMAT = "repro.soak-report"
SOAK_VERSION = 1

PASS = "pass"
DEGRADED = "degraded"
FAIL = "fail"
GRADES = (PASS, DEGRADED, FAIL)

#: event names copied into the report's breaker transition log
BREAKER_EVENTS = contracts.BREAKER_EVENTS
#: membership lifecycle events copied next to the breaker log
MEMBERSHIP_EVENTS = contracts.MEMBERSHIP_EVENTS


def classify_outcome(outcome: Mapping[str, Any]) -> tuple[str, str]:
    """Grade one workload item; returns ``(grade, reason)``.

    The orchestrator records each item as a dict with at least ``kind``
    (``mine`` / ``cache`` / ``reject``) and ``status`` (terminal job
    status, or ``rejected`` for a 429).  Optional flags refine the
    grade: ``matched`` (pattern set equals the reference), ``cached``
    (answered from the result cache), ``degraded`` (retries or local
    fallback were involved in completing it).
    """
    kind = outcome.get("kind", "mine")
    status = outcome.get("status")
    if kind == "reject":
        # overload probes are *supposed* to bounce; a served answer just
        # means the queue happened to have room — both are correct
        if status == "rejected":
            return PASS, "rejected with explicit backpressure"
        if status == "done":
            return PASS, "accepted anyway (queue had room)"
        return FAIL, f"overload probe ended {status!r}"
    if status != "done":
        error = outcome.get("error") or "no error detail"
        return FAIL, f"job ended {status!r}: {error}"
    if outcome.get("matched") is False:
        return FAIL, "pattern set differs from the single-box reference"
    if kind == "cache" and not outcome.get("cached"):
        return DEGRADED, "expected a cache hit, re-mined instead"
    if outcome.get("degraded"):
        return DEGRADED, "completed through retries or local fallback"
    return PASS, "behaved like an unfaulted run"


def transition_log(events: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Breaker and membership transitions, in event-log order."""
    interesting = set(BREAKER_EVENTS) | set(MEMBERSHIP_EVENTS)
    log = []
    for record in events:
        name = record.get("event")
        if name in interesting:
            entry: dict[str, Any] = {
                "ts": record.get("ts"),
                "event": name,
                "worker": record.get("worker"),
            }
            if "previous" in record:
                entry["previous"] = record["previous"]
            log.append(entry)
    return log


def recovery_latencies(
    kills: Sequence[Mapping[str, Any]],
    events: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Per-kill recovery measurements from the coordinator's event log.

    For each kill (``{"worker": url, "ts": wall-clock}``) this finds the
    first ``worker.joined`` of the same URL after the kill (the rejoin)
    and the first ``shard.completed`` dispatched to that worker after
    the rejoin (work actually flowing again).  Latencies are ``None``
    when the stage never happened inside the soak window — the grading
    of the surrounding jobs decides whether that matters.
    """
    out = []
    for kill in kills:
        worker = kill.get("worker")
        killed_at = kill.get("ts")
        rejoined_at = None
        mining_at = None
        if isinstance(killed_at, (int, float)):
            for record in events:
                ts = record.get("ts")
                if not isinstance(ts, (int, float)) or ts <= killed_at:
                    continue
                if record.get("worker") != worker:
                    continue
                name = record.get("event")
                if rejoined_at is None:
                    if name == "worker.joined":
                        rejoined_at = ts
                elif name == "shard.completed":
                    mining_at = ts
                    break
        entry: dict[str, Any] = {"worker": worker, "killed_ts": killed_at}
        entry["rejoin_seconds"] = (
            round(rejoined_at - killed_at, 3) if rejoined_at is not None else None
        )
        entry["first_shard_after_rejoin_seconds"] = (
            round(mining_at - rejoined_at, 3)
            if mining_at is not None and rejoined_at is not None else None
        )
        out.append(entry)
    return out


def build_report(
    outcomes: Sequence[Mapping[str, Any]],
    invariants: Mapping[str, bool],
    events: Sequence[Mapping[str, Any]] = (),
    kills: Sequence[Mapping[str, Any]] = (),
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the graded ``repro.soak-report`` v1 document.

    The overall ``verdict`` is ``fail`` when any line grades fail or
    any invariant is broken, else ``degraded`` when any line grades
    degraded, else ``pass``.
    """
    lines = []
    counts = {grade: 0 for grade in GRADES}
    for outcome in outcomes:
        grade, reason = classify_outcome(outcome)
        counts[grade] += 1
        line: dict[str, Any] = {
            "grade": grade,
            "kind": outcome.get("kind", "mine"),
            "reason": reason,
        }
        for key in ("job_id", "status", "seconds"):
            if outcome.get(key) is not None:
                line[key] = outcome[key]
        lines.append(line)
    broken = sorted(name for name, ok in invariants.items() if not ok)
    if broken or counts[FAIL]:
        verdict = FAIL
    elif counts[DEGRADED]:
        verdict = DEGRADED
    else:
        verdict = PASS
    return {
        "format": SOAK_FORMAT,
        "version": SOAK_VERSION,
        "verdict": verdict,
        "counts": counts,
        "lines": lines,
        "invariants": dict(invariants),
        "broken_invariants": broken,
        "recovery": recovery_latencies(kills, events),
        "transitions": transition_log(events),
        "meta": dict(meta or {}),
    }


def render_report(report: Mapping[str, Any]) -> str:
    """A terse human summary of one report (printed by the harness)."""
    counts = report.get("counts", {})
    lines = [
        f"soak verdict: {report.get('verdict')} "
        f"({counts.get(PASS, 0)} pass, {counts.get(DEGRADED, 0)} degraded, "
        f"{counts.get(FAIL, 0)} fail)",
    ]
    for name in report.get("broken_invariants", []):
        lines.append(f"  INVARIANT BROKEN: {name}")
    for line in report.get("lines", []):
        if line.get("grade") != PASS:
            subject = line.get("job_id") or line.get("kind")
            lines.append(f"  {line['grade']}: {subject}: {line['reason']}")
    for entry in report.get("recovery", []):
        lines.append(
            f"  recovery {entry.get('worker')}: rejoin "
            f"{entry.get('rejoin_seconds')}s, mining again "
            f"{entry.get('first_shard_after_rejoin_seconds')}s later"
        )
    lines.append(f"  breaker/membership transitions: {len(report.get('transitions', []))}")
    return "\n".join(lines)
