"""Empirical scaling analysis (system S21).

Figure 8's claim is about growth: DISC-all's advantage over the
projection miners widens with database size.  This module makes that
quantitative by fitting power laws ``time = c * n^k`` to measured
(size, time) points — a log-log least-squares fit — so the reproduction
can report scaling *exponents* instead of eyeballed curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True, slots=True)
class PowerLawFit:
    """Result of a log-log least-squares fit of ``y = c * x**k``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Model value at *x*."""
        return self.coefficient * x**self.exponent

    def __str__(self) -> str:
        return (
            f"y = {self.coefficient:.4g} * x^{self.exponent:.3f} "
            f"(R^2 = {self.r_squared:.4f})"
        )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x**k`` through positive measurement points.

    Needs at least two distinct x values; all coordinates must be
    strictly positive (times and sizes always are).
    """
    if len(xs) != len(ys):
        raise InvalidParameterError(
            f"{len(xs)} x values but {len(ys)} y values"
        )
    if len(xs) < 2:
        raise InvalidParameterError("need at least two points to fit")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if (x <= 0).any() or (y <= 0).any():
        raise InvalidParameterError("power-law fit needs positive coordinates")
    if np.unique(x).size < 2:
        raise InvalidParameterError("need at least two distinct x values")
    log_x, log_y = np.log(x), np.log(y)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = float(((log_y - predicted) ** 2).sum())
    total = float(((log_y - log_y.mean()) ** 2).sum())
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=r_squared,
    )


def scaling_exponents(
    sizes: Sequence[float], times_by_algorithm: dict[str, Sequence[float]]
) -> dict[str, PowerLawFit]:
    """Fit one power law per algorithm over a shared size axis."""
    return {
        algorithm: fit_power_law(sizes, times)
        for algorithm, times in times_by_algorithm.items()
    }
