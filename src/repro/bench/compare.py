"""Perf-regression gate: compare a bench run against a committed baseline.

``repro bench --compare BENCH_baseline.json`` collects a fresh baseline
document (or loads one via ``--candidate``) and diffs it run-by-run
against the committed one, producing a machine-readable verdict with a
``pass`` / ``fail`` decision.  The comparison separates two kinds of
signal:

* **Counters are exact.**  The DISC counters (comparisons, lemma tallies,
  partition counts, ...) are deterministic functions of the database and
  algorithm — any difference is a behaviour change, not noise, and fails
  the gate outright.  The candidate must also satisfy the paper's
  internal invariant ``comparisons == lemma1_frequent + lemma2_prunes``.

* **Timings are noisy and machine-dependent.**  Wall-clock comparisons
  use a relative tolerance plus an absolute slack floor (sub-50ms deltas
  are scheduler noise, not regressions), and per-phase checks skip
  phases too short to measure reliably.  ``calibrate=True`` additionally
  divides every ratio by the median elapsed ratio across all runs, which
  absorbs a uniformly faster/slower machine (CI runners vs the laptop
  that committed the baseline) while still catching a *relative* shift
  concentrated in one run or phase.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.baseline import BASELINE_FORMAT, collect_baseline
from repro.exceptions import DataFormatError

COMPARE_FORMAT = "repro.bench-compare"
COMPARE_VERSION = 1

#: default relative tolerance: fail only when > 1.5x the baseline time
DEFAULT_TOLERANCE = 0.5
#: absolute slack: time deltas under this are never regressions
ABS_SLACK_SECONDS = 0.05
#: per-phase checks require at least this much baseline signal
PHASE_FLOOR_SECONDS = 0.05

#: the counter invariant of Lemmas 2.1/2.2 the candidate must satisfy
_INVARIANT = ("disc.comparisons", "disc.lemma1_frequent", "disc.lemma2_prunes")


def load_baseline(path):
    """Read and structurally validate a baseline document from *path*."""
    with Path(path).open("r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise DataFormatError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != BASELINE_FORMAT:
        raise DataFormatError(
            f"{path} is not a {BASELINE_FORMAT!r} document "
            f"(format={document.get('format') if isinstance(document, dict) else None!r})"
        )
    if not isinstance(document.get("runs"), list):
        raise DataFormatError(f"{path} has no 'runs' list")
    return document


def _run_key(run):
    return (str(run.get("algorithm")), repr(run.get("minsup")))


def _median(values):
    ordered = sorted(values)  # repro: allow[DISC002] — scalar floats
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _counter_findings(base_counters, cand_counters):
    findings = []
    shared = sorted(set(base_counters) & set(cand_counters))  # repro: allow[DISC002]
    for name in shared:
        if base_counters[name] != cand_counters[name]:
            findings.append(
                f"counter {name}: {base_counters[name]} -> {cand_counters[name]} "
                "(counters are deterministic; this is a behaviour change)"
            )
    if all(name in cand_counters for name in _INVARIANT):
        comparisons = cand_counters[_INVARIANT[0]]
        lemma1 = cand_counters[_INVARIANT[1]]
        lemma2 = cand_counters[_INVARIANT[2]]
        if comparisons != lemma1 + lemma2:
            findings.append(
                f"counter invariant violated: comparisons={comparisons} != "
                f"lemma1_frequent={lemma1} + lemma2_prunes={lemma2}"
            )
    return findings


def _timing_finding(label, base_seconds, cand_seconds, tolerance, factor):
    """A regression message for one timing pair, or None when acceptable."""
    reference = base_seconds * factor
    if cand_seconds - reference <= ABS_SLACK_SECONDS:
        return None
    if reference <= 0:
        return None
    ratio = cand_seconds / reference
    if ratio <= 1.0 + tolerance:
        return None
    return (
        f"{label}: {base_seconds:.3f}s -> {cand_seconds:.3f}s "
        f"(x{ratio:.2f} calibrated, tolerance x{1.0 + tolerance:.2f})"
    )


def compare_documents(
    baseline,
    candidate,
    tolerance: float = DEFAULT_TOLERANCE,
    calibrate: bool = False,
):
    """Diff two baseline documents into a verdict document.

    Returns a ``repro.bench-compare`` dict whose ``verdict`` is ``pass``
    or ``fail``; per-run findings explain every failure.
    """
    if baseline.get("scale") != candidate.get("scale"):
        raise DataFormatError(
            f"scale mismatch: baseline is {baseline.get('scale')!r}, "
            f"candidate is {candidate.get('scale')!r} — compare like with like"
        )
    base_runs = {_run_key(run): run for run in baseline["runs"]}
    cand_runs = {_run_key(run): run for run in candidate["runs"]}

    # calibration: the median elapsed ratio over matched runs estimates
    # the machines' uniform speed difference
    ratios = []
    for key, base in base_runs.items():
        cand = cand_runs.get(key)
        if cand is None:
            continue
        base_elapsed = float(base.get("elapsed_seconds") or 0.0)
        cand_elapsed = float(cand.get("elapsed_seconds") or 0.0)
        if base_elapsed > 0 and cand_elapsed > 0:
            ratios.append(cand_elapsed / base_elapsed)
    factor = _median(ratios) if (calibrate and ratios) else 1.0

    runs = []
    regressions = 0
    structure_findings = []
    for key in base_runs:
        if key not in cand_runs:
            structure_findings.append(
                f"run missing from candidate: algorithm={key[0]} minsup={key[1]}"
            )
    for key in cand_runs:
        if key not in base_runs:
            structure_findings.append(
                f"run not in baseline: algorithm={key[0]} minsup={key[1]}"
            )

    for key, base in base_runs.items():
        cand = cand_runs.get(key)
        if cand is None:
            continue
        findings = []
        for field in ("delta", "patterns"):
            if base.get(field) != cand.get(field):
                findings.append(
                    f"{field}: {base.get(field)} -> {cand.get(field)} "
                    "(result mismatch)"
                )
        base_counters = base.get("counters") or {}
        cand_counters = cand.get("counters") or {}
        findings.extend(_counter_findings(base_counters, cand_counters))
        base_elapsed = float(base.get("elapsed_seconds") or 0.0)
        cand_elapsed = float(cand.get("elapsed_seconds") or 0.0)
        timing = _timing_finding(
            "elapsed", base_elapsed, cand_elapsed, tolerance, factor
        )
        if timing is not None:
            findings.append(timing)
        base_phases = base.get("phase_seconds") or {}
        cand_phases = cand.get("phase_seconds") or {}
        shared_phases = sorted(  # repro: allow[DISC002] — phase-name strings
            set(base_phases) & set(cand_phases)
        )
        for phase in shared_phases:
            base_phase = float(base_phases[phase])
            if base_phase < PHASE_FLOOR_SECONDS:
                continue  # too short to measure reliably
            timing = _timing_finding(
                f"phase {phase}", base_phase, float(cand_phases[phase]),
                tolerance, factor,
            )
            if timing is not None:
                findings.append(timing)
        if findings:
            regressions += 1
        runs.append({
            "algorithm": key[0],
            "minsup": base.get("minsup"),
            "status": "regression" if findings else "ok",
            "elapsed_baseline": base_elapsed,
            "elapsed_candidate": cand_elapsed,
            "ratio": round(cand_elapsed / base_elapsed, 4) if base_elapsed else None,
            "findings": findings,
        })

    failed = bool(structure_findings) or regressions > 0
    return {
        "format": COMPARE_FORMAT,
        "version": COMPARE_VERSION,
        "scale": baseline.get("scale"),
        "tolerance": tolerance,
        "calibrated": calibrate,
        "calibration_ratio": round(factor, 4),
        "verdict": "fail" if failed else "pass",
        "regressions": regressions,
        "structure_findings": structure_findings,
        "runs": runs,
    }


def compare_against(
    baseline_path,
    candidate=None,
    tolerance: float = DEFAULT_TOLERANCE,
    calibrate: bool = False,
):
    """Load the committed baseline, collect/accept a candidate, compare.

    *candidate* may be a pre-collected document (tests, ``--candidate``);
    omitted, a fresh run is collected at the baseline's own scale so the
    comparison is always like-for-like.
    """
    baseline = load_baseline(baseline_path)
    if candidate is None:
        candidate = collect_baseline(scale=str(baseline.get("scale", "repro")))
    return compare_documents(
        baseline, candidate, tolerance=tolerance, calibrate=calibrate
    )


def render_verdict(verdict) -> str:
    """Human-readable lines for one verdict document."""
    lines = [
        f"bench compare (scale={verdict.get('scale')}, "
        f"tolerance=x{1.0 + float(verdict.get('tolerance', 0.0)):.2f}, "
        f"calibration x{verdict.get('calibration_ratio')})"
    ]
    for finding in verdict.get("structure_findings", ()):
        lines.append(f"  !! {finding}")
    for run in verdict.get("runs", ()):
        mark = "ok" if run.get("status") == "ok" else "REGRESSION"
        ratio = run.get("ratio")
        ratio_text = f"x{ratio:.2f}" if isinstance(ratio, float) else "-"
        lines.append(
            f"  {run.get('algorithm')} minsup={run.get('minsup')}: "
            f"{run.get('elapsed_baseline'):.3f}s -> "
            f"{run.get('elapsed_candidate'):.3f}s ({ratio_text})  {mark}"
        )
        for finding in run.get("findings", ()):
            lines.append(f"      - {finding}")
    lines.append(f"verdict: {str(verdict.get('verdict', '')).upper()}")
    return "\n".join(lines)
