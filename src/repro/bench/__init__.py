"""Benchmark harness (system S21): regenerate every table and figure."""

from repro.bench.harness import ExperimentResult, run_experiment
from repro.bench.experiments import EXPERIMENTS

__all__ = ["ExperimentResult", "run_experiment", "EXPERIMENTS"]
