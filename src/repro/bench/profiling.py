"""Profiling hooks: cProfile around an observed mining run.

``repro profile`` answers "where does the time go?" with two correlated
views of one run: the :mod:`repro.obs` phase attribution (mine /
algorithm / partition / discover_k / post_filter spans) and a cProfile
hotspot table (per-function tottime/cumtime).  Phases tell you *which
stage* regressed; hotspots tell you *which function* inside it.

The profiler wraps only the :func:`repro.mining.api.mine` call — dataset
loading and report rendering stay outside the measurement, so the
numbers match what ``repro bench`` times.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any

from repro.db.database import SequenceDatabase
from repro.mining.api import mine

PROFILE_FORMAT = "repro.profile"
PROFILE_VERSION = 1
DEFAULT_TOP = 15


def profile_mine(
    db: SequenceDatabase,
    min_support: float | int,
    algorithm: str = "disc-all",
    top: int = DEFAULT_TOP,
    **options: Any,
):
    """Run one observed, profiled mining run; return a profile document.

    The document carries the run identity (algorithm, delta, patterns,
    elapsed), the per-phase seconds from the run's own span tree, and
    the top-*top* functions by ``tottime``.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = mine(db, min_support, algorithm=algorithm, observe=True, **options)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    hotspots = _hotspots(stats, top)
    phases = {}
    if result.report is not None:
        phases = {
            phase: round(seconds, 6)
            for phase, seconds in result.report.phase_totals().items()
        }
    return {
        "format": PROFILE_FORMAT,
        "version": PROFILE_VERSION,
        "algorithm": algorithm,
        "minsup": min_support,
        "delta": result.delta,
        "database_size": result.database_size,
        "patterns": len(result.patterns),
        "elapsed_seconds": round(result.elapsed_seconds, 6),
        "phase_seconds": phases,
        "hotspots": hotspots,
    }


def _hotspots(stats: pstats.Stats, top: int):
    """The *top* profiled functions by total (self) time."""
    rows = []
    # stats.stats maps (file, line, func) -> (cc, ncalls, tottime, cumtime, callers)
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][2],
        reverse=True,
    )
    for (filename, line, func), (_cc, ncalls, tottime, cumtime, _callers) in entries:
        if len(rows) >= max(top, 0):
            break
        rows.append({
            "function": func,
            "file": filename,
            "line": line,
            "calls": ncalls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    return rows


def render_profile(document) -> str:
    """Human-readable phase table + hotspot table for one document."""
    lines = [
        f"profile: {document.get('algorithm')} "
        f"minsup={document.get('minsup')} delta={document.get('delta')} "
        f"patterns={document.get('patterns')} "
        f"elapsed={document.get('elapsed_seconds'):.3f}s",
        "",
        "phase seconds:",
    ]
    phases = document.get("phase_seconds") or {}
    width = max((len(name) for name in phases), default=5)
    for name, seconds in phases.items():
        lines.append(f"  {name:<{width}}  {seconds:>9.4f}s")
    lines.append("")
    lines.append(
        f"{'tottime':>9}  {'cumtime':>9}  {'calls':>9}  function"
    )
    for row in document.get("hotspots", ()):
        location = f"{row.get('file')}:{row.get('line')}"
        lines.append(
            f"{row.get('tottime'):>9.4f}  {row.get('cumtime'):>9.4f}  "
            f"{row.get('calls'):>9}  {row.get('function')}  ({location})"
        )
    return "\n".join(lines)
