"""Instrumented benchmark baselines (``BENCH_*.json`` trajectories).

:func:`collect_baseline` mines the Figure-9 database across the scale's
minimum-support sweep with observation enabled and condenses each run's
:class:`~repro.obs.RunReport` into one row: wall time, per-phase span
totals, and the DISC counters the ablation studies track.  The resulting
document is committed as ``BENCH_baseline.json`` so later optimisation
PRs can diff their counters and phase times against a known-good state.
"""

from __future__ import annotations

from repro.bench.harness import SCALES, Scale, observed_mine
from repro.obs import RunReport

#: Counters condensed into each baseline row (see docs/DEVELOPMENT.md,
#: "Observability" for the full vocabulary).
BASELINE_COUNTERS = (
    "disc.comparisons",
    "disc.lemma1_frequent",
    "disc.lemma2_prunes",
    "disc.rounds",
    "disc.ckms_calls",
    "discall.first_level_mined",
    "discall.second_level_mined",
    "discall.reduced_members",
    "partition.first_level",
    "partition.extension",
    "sorted_db.kms_calls",
    "sorted_db.kms_dropped",
)

#: Algorithms baselined (the paper's main configuration and the dynamic
#: variant it is compared to in Figure 10).
BASELINE_ALGORITHMS = ("disc-all", "dynamic-disc-all")

BASELINE_FORMAT = "repro.bench-baseline"
BASELINE_VERSION = 1


def _condense(report: RunReport) -> dict[str, object]:
    """One report -> {phase_seconds, counters} (the comparable core)."""
    phases = {
        name: round(seconds, 6) for name, seconds in report.phase_totals().items()
    }
    counters = {name: report.counter_total(name) for name in BASELINE_COUNTERS}
    return {"phase_seconds": phases, "counters": counters}


def collect_baseline(
    scale: str | Scale = "repro",
    algorithms: tuple[str, ...] = BASELINE_ALGORITHMS,
) -> dict[str, object]:
    """Mine the Figure-9 sweep instrumented; return the baseline document."""
    from repro.bench.experiments import _fig9_db

    resolved = SCALES[scale] if isinstance(scale, str) else scale
    db = _fig9_db(resolved)
    runs: list[dict[str, object]] = []
    for algorithm in algorithms:
        for minsup in resolved.fig9_minsups:
            result = observed_mine(db, minsup, algorithm)
            assert result.report is not None  # observe=True attaches one
            row: dict[str, object] = {
                "algorithm": algorithm,
                "minsup": minsup,
                "delta": result.delta,
                "patterns": len(result),
                "elapsed_seconds": round(result.elapsed_seconds, 6),
            }
            row.update(_condense(result.report))
            runs.append(row)
    return {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "scale": resolved.name,
        "database_size": len(db),
        "runs": runs,
    }
