"""Peak-memory measurement for the miners (system S21).

Section 1.1 notes SPAM "is efficient under the assumption that all the
bitmaps can be completely stored in the main memory" and that SPADE's
lattice exists to bound memory.  This module measures each algorithm's
peak allocation with :mod:`tracemalloc` so that trade-off is visible in
the reproduction, not just asserted.
"""

from __future__ import annotations

import tracemalloc

from repro.db.database import SequenceDatabase
from repro.mining.registry import get_algorithm


def peak_memory_bytes(
    db: SequenceDatabase, min_support: float | int, algorithm: str, **options
) -> tuple[int, int]:
    """(peak allocated bytes, number of patterns) for one mining run.

    Only allocations made during the run are counted (the database
    itself is excluded by resetting the baseline after materialising
    the members list).
    """
    miner = get_algorithm(algorithm)
    delta = db.delta_for(min_support)
    members = db.members()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        patterns = miner(members, delta, **options)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, len(patterns)
