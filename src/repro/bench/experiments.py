"""Experiment drivers: one per table/figure of the paper (system S21).

Every driver regenerates the corresponding result at the requested scale
and returns an :class:`~repro.bench.harness.ExperimentResult` whose rows
mirror the paper's columns.  Absolute numbers differ from the paper (this
is pure Python on scaled-down Quest data, not C on a 2.8 GHz Pentium 4);
EXPERIMENTS.md records the shape comparison per experiment.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, Scale, timed_mine
from repro.core.nrr import compute_nrr_profile
from repro.datagen import QuestParams, generate
from repro.db.database import SequenceDatabase
from repro.mining.api import mine

#: Algorithms compared in Figures 8 and 9 (bi-level DISC-all, as in §4.1).
_FIG89_ALGOS = ("disc-all", "prefixspan", "pseudo")
#: Algorithms compared in Figure 10.
_FIG10_ALGOS = ("dynamic-disc-all", "disc-all", "prefixspan", "pseudo")


def _fig8_db(scale: Scale, ncust: int) -> SequenceDatabase:
    """Figure 8 databases: Table 11 parameters (slen 10*, tlen 2.5, patlen 4)."""
    return generate(
        QuestParams(
            ncust=ncust,
            slen=8 if scale.name != "paper" else 10,
            tlen=2.5,
            nitems=scale.nitems,
            patlen=4,
            npats=scale.npats,
            seed=8,
        )
    )


def _fig9_db(scale: Scale) -> SequenceDatabase:
    """Figure 9 / Tables 12-13 database: the dense setting of [8].

    The paper sets slen = tlen = seq.patlen = 8 on 10K customers; the
    repro scale uses 6/4/6 on fewer customers to keep the same "long
    sequences, deep patterns" character at laptop runtimes.
    """
    dense = scale.name == "paper"
    return generate(
        QuestParams(
            ncust=scale.fig9_ncust,
            slen=8 if dense else 6,
            tlen=8 if dense else 4,
            nitems=scale.nitems,
            patlen=8 if dense else 6,
            npats=scale.npats,
            seed=9,
        )
    )


def _theta_db(scale: Scale, theta: int) -> SequenceDatabase:
    """Figure 10 / Table 14 databases: default Quest except slen = theta."""
    return generate(
        QuestParams(
            ncust=scale.theta_ncust,
            slen=float(theta),
            tlen=2.5,
            nitems=scale.nitems,
            patlen=4,
            npats=scale.npats,
            seed=10,
        )
    )


def fig8(scale: Scale) -> ExperimentResult:
    """Figure 8: processing time vs database size (Ncust sweep)."""
    rows: list[list[object]] = []
    for ncust in scale.fig8_ncust:
        db = _fig8_db(scale, ncust)
        row: list[object] = [ncust, db.delta_for(scale.fig8_minsup)]
        counts: list[int] = []
        for algo in _FIG89_ALGOS:
            seconds, n_patterns = timed_mine(db, scale.fig8_minsup, algo)
            row.append(round(seconds, 3))
            counts.append(n_patterns)
        assert len(set(counts)) == 1, "algorithms disagree on pattern count"
        row.append(counts[0])
        rows.append(row)
    notes = [
        f"minimum support threshold {scale.fig8_minsup} (paper: 0.0025)",
        "expected shape: DISC-all fastest, gap widening with ncust",
    ]
    if len(rows) >= 2:
        from repro.bench.scaling import fit_power_law

        sizes = [row[0] for row in rows]
        for offset, algo in enumerate(_FIG89_ALGOS):
            times = [max(1e-4, row[2 + offset]) for row in rows]
            fit = fit_power_law(sizes, times)
            notes.append(f"{algo} empirical scaling: {fit}")
    return ExperimentResult(
        experiment="fig8",
        paper_reference="Figure 8: comparisons on database sizes",
        headers=["ncust", "delta", *(f"{a} (s)" for a in _FIG89_ALGOS), "patterns"],
        rows=rows,
        notes=notes,
    )


def fig9(scale: Scale) -> ExperimentResult:
    """Figure 9: processing time vs minimum support threshold."""
    db = _fig9_db(scale)
    rows: list[list[object]] = []
    for minsup in scale.fig9_minsups:
        row: list[object] = [minsup, db.delta_for(minsup)]
        counts: list[int] = []
        for algo in _FIG89_ALGOS:
            seconds, n_patterns = timed_mine(db, minsup, algo)
            row.append(round(seconds, 3))
            counts.append(n_patterns)
        assert len(set(counts)) == 1, "algorithms disagree on pattern count"
        row.append(counts[0])
        rows.append(row)
    return ExperimentResult(
        experiment="fig9",
        paper_reference="Figure 9: comparisons on different deltas",
        headers=["minsup", "delta", *(f"{a} (s)" for a in _FIG89_ALGOS), "patterns"],
        rows=rows,
        notes=[
            f"|DB| = {len(db)}, dense setting of [8] (slen=tlen=patlen)",
            "expected shape: DISC-all lowest across the sweep",
        ],
    )


def _nrr_rows(
    dbs: list[tuple[object, SequenceDatabase, float]]
) -> tuple[list[list[object]], int]:
    """Shared NRR-profile tabulation for Tables 12 and 14."""
    profiles = []
    deepest = 1
    for label, db, minsup in dbs:
        result = mine(db, minsup, algorithm="disc-all")
        profile = compute_nrr_profile(result.patterns, len(db)).averages()
        deepest = max(deepest, max(profile, default=0))
        profiles.append((label, profile))
    rows = []
    for label, profile in profiles:
        rows.append(
            [label, *(
                round(profile[level], 4) if level in profile else None
                for level in range(0, deepest + 1)
            )]
        )
    return rows, deepest


def table12(scale: Scale) -> ExperimentResult:
    """Table 12: average NRR per partition level under different deltas."""
    db = _fig9_db(scale)
    rows, deepest = _nrr_rows(
        [(minsup, db, minsup) for minsup in scale.fig9_minsups]
    )
    return ExperimentResult(
        experiment="table12",
        paper_reference="Table 12: average NRR under different deltas",
        headers=["minsup", "original", *(str(level) for level in range(1, deepest + 1))],
        rows=rows,
        notes=[
            "expected shape: tiny at level 0, small at level 1, near 1 deeper;",
            "lower minsup reaches deeper levels with lower NRR values",
        ],
    )


def table13(scale: Scale) -> ExperimentResult:
    """Table 13: processing-time ratio of Pseudo to DISC-all."""
    db = _fig9_db(scale)
    rows: list[list[object]] = []
    for minsup in scale.fig9_minsups:
        pseudo_s, _ = timed_mine(db, minsup, "pseudo")
        disc_s, _ = timed_mine(db, minsup, "disc-all")
        rows.append(
            [minsup, round(pseudo_s, 3), round(disc_s, 3),
             round(pseudo_s / disc_s, 4) if disc_s else None]
        )
    return ExperimentResult(
        experiment="table13",
        paper_reference="Table 13: the ratio of Pseudo to DISC-all",
        headers=["minsup", "Pseudo (s)", "DISC-all (s)", "Pseudo/DISC-all"],
        rows=rows,
        notes=["paper reports ratios 3.6-8.3 in C; shape: ratio > 1 in the mid-range"],
    )


def table14(scale: Scale) -> ExperimentResult:
    """Table 14: average NRR per level under different thetas."""
    rows, deepest = _nrr_rows(
        [
            (theta, _theta_db(scale, theta), scale.theta_minsup)
            for theta in scale.theta_values
        ]
    )
    return ExperimentResult(
        experiment="table14",
        paper_reference="Table 14: average NRR under different thetas",
        headers=["theta", "original", *(str(level) for level in range(1, deepest + 1))],
        rows=rows,
        notes=["expected shape: level-2+ NRR decreasing as theta grows"],
    )


def fig10(scale: Scale) -> ExperimentResult:
    """Figure 10: processing time vs theta, incl. Dynamic DISC-all."""
    rows: list[list[object]] = []
    for theta in scale.theta_values:
        db = _theta_db(scale, theta)
        row: list[object] = [theta]
        counts: list[int] = []
        for algo in _FIG10_ALGOS:
            seconds, n_patterns = timed_mine(db, scale.theta_minsup, algo)
            row.append(round(seconds, 3))
            counts.append(n_patterns)
        assert len(set(counts)) == 1, "algorithms disagree on pattern count"
        row.append(counts[0])
        rows.append(row)
    return ExperimentResult(
        experiment="fig10",
        paper_reference="Figure 10: comparisons on different thetas",
        headers=["theta", *(f"{a} (s)" for a in _FIG10_ALGOS), "patterns"],
        rows=rows,
        notes=["expected shape: Dynamic DISC-all best as theta grows"],
    )


def ablation(scale: Scale) -> ExperimentResult:
    """Ablation (ours): the contribution of each DISC-all ingredient."""
    db = _fig9_db(scale)
    minsup = scale.fig9_minsups[len(scale.fig9_minsups) // 2]
    variants: list[tuple[str, str, dict]] = [
        ("bi-level (paper config)", "disc-all", {}),
        ("plain per-k DISC", "disc-all", {"bilevel": False}),
        ("no sequence reduction", "disc-all", {"reduce": False}),
        ("locative AVL backend", "disc-all", {"backend": "avl"}),
        ("dynamic gamma=0.5", "dynamic-disc-all", {}),
        ("dynamic gamma=1.0 (partition always)", "dynamic-disc-all", {"gamma": 1.0}),
        ("static 1-level partitioning", "multilevel-disc-all", {"levels": 1}),
        ("static 3-level partitioning", "multilevel-disc-all", {"levels": 3}),
    ]
    rows: list[list[object]] = []
    reference: int | None = None
    for label, algo, options in variants:
        seconds, n_patterns = timed_mine(db, minsup, algo, **options)
        if reference is None:
            reference = n_patterns
        assert n_patterns == reference, f"{label}: pattern count mismatch"
        rows.append([label, round(seconds, 3), n_patterns])
    return ExperimentResult(
        experiment="ablation",
        paper_reference="(ours) design-choice ablation on the Figure 9 database",
        headers=["variant", "time (s)", "patterns"],
        rows=rows,
        notes=[f"minsup={minsup}, |DB|={len(db)}"],
    )


def memory(scale: Scale) -> ExperimentResult:
    """Memory profile (ours): peak allocation per algorithm.

    Quantifies the §1.1 trade-off: SPAM's bitmaps and SPADE's ID-lists
    buy speed with memory, PrefixSpan's physical projection copies
    postfixes, pseudo-projection and DISC-all keep pointers.
    """
    from repro.bench.memory import peak_memory_bytes

    db = _fig9_db(scale)
    minsup = scale.fig9_minsups[0]
    rows: list[list[object]] = []
    reference: int | None = None
    for algo in ("disc-all", "dynamic-disc-all", "prefixspan", "pseudo",
                 "spade", "spam", "gsp"):
        peak, n_patterns = peak_memory_bytes(db, minsup, algo)
        if reference is None:
            reference = n_patterns
        assert n_patterns == reference, f"{algo}: pattern count mismatch"
        rows.append([algo, round(peak / 1024, 1), n_patterns])
    return ExperimentResult(
        experiment="memory",
        paper_reference="(ours) peak memory per algorithm, Figure 9 database",
        headers=["algorithm", "peak KiB", "patterns"],
        rows=rows,
        notes=[f"minsup={minsup}, |DB|={len(db)}; tracemalloc peaks"],
    )


def operations(scale: Scale) -> ExperimentResult:
    """Operation counts (ours): the paper's central claim, quantified.

    "Only the support counts of frequent sequences are required to be
    computed.  That is, no candidate sequence is generated" (§1.2).
    This experiment counts, on one database: the candidates GSP
    generates and counts, the projected databases PrefixSpan builds, and
    DISC-all's direct comparisons — against the number of frequent
    sequences, the lower bound every miner must touch.
    """
    from repro.baselines import gsp, prefixspan
    from repro.core.discall import disc_all

    db = _fig9_db(scale)
    minsup = scale.fig9_minsups[-1]  # lowest: deep patterns engage DISC
    delta = db.delta_for(minsup)
    members = db.members()

    gsp_patterns = gsp.mine_gsp(members, delta)
    gsp_stats = dict(gsp.last_run_stats)
    ps_patterns = prefixspan.mine_prefixspan(members, delta)
    ps_stats = dict(prefixspan.last_run_stats)
    disc_out = disc_all(members, delta)
    assert gsp_patterns == ps_patterns == disc_out.patterns
    n_frequent = len(disc_out.patterns)

    rows = [
        ["frequent sequences (lower bound)", n_frequent],
        ["GSP candidates generated", gsp_stats["candidates_generated"]],
        ["GSP candidates support-counted", gsp_stats["candidates_counted"]],
        ["PrefixSpan projected databases", ps_stats["projections_built"]],
        ["PrefixSpan postfixes copied", ps_stats["postfixes_copied"]],
        ["DISC-all direct comparisons", disc_out.stats.disc_comparisons],
        ["DISC-all DISC rounds", disc_out.stats.disc_rounds],
        ["DISC-all second-level partitions", disc_out.stats.second_level_partitions],
    ]
    return ExperimentResult(
        experiment="operations",
        paper_reference="(ours) operation counts for the §1.2 claim",
        headers=["operation", "count"],
        rows=rows,
        notes=[
            f"minsup={minsup}, |DB|={len(db)}, delta={delta}",
            "GSP counts supports of non-frequent candidates; DISC-all's",
            "support counts are exactly the frequent sequences (group sizes",
            "and counting-array cells), plus one comparison per round",
        ],
    )


EXPERIMENTS = {
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "table12": table12,
    "table13": table13,
    "table14": table14,
    "ablation": ablation,
    "memory": memory,
    "operations": operations,
}
