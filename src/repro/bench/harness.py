"""Experiment harness (system S21).

One :class:`ExperimentResult` per paper table/figure, produced by the
drivers in :mod:`repro.bench.experiments`.  Every driver accepts a
:class:`Scale` describing how far to shrink the paper's workloads; the
default ``repro`` scale finishes on a laptop in minutes, while ``paper``
uses the original parameters (hours in pure Python — documented, not
recommended).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.reporting import render_table
from repro.db.database import SequenceDatabase
from repro.mining.api import mine
from repro.mining.result import MiningResult


@dataclass(frozen=True, slots=True)
class Scale:
    """Workload scale factors relative to the paper's setup."""

    name: str
    #: customers for the Figure 8 sweep
    fig8_ncust: tuple[int, ...]
    #: minimum support threshold for Figure 8
    fig8_minsup: float
    #: customers for the Figure 9 / Tables 12-13 database
    fig9_ncust: int
    #: minimum support sweep for Figure 9 / Tables 12-13
    fig9_minsups: tuple[float, ...]
    #: average transactions per customer (theta) sweep, Fig 10 / Table 14
    theta_values: tuple[int, ...]
    #: customers for the theta sweep
    theta_ncust: int
    #: minimum support for the theta sweep
    theta_minsup: float
    #: item-universe size
    nitems: int
    #: potential-pattern table size
    npats: int


#: Laptop-scale defaults: same shapes as the paper, ~100x fewer customers.
REPRO_SCALE = Scale(
    name="repro",
    fig8_ncust=(500, 1000, 2000, 4000),
    fig8_minsup=0.015,
    fig9_ncust=600,
    fig9_minsups=(0.03, 0.025, 0.02, 0.015, 0.0125, 0.01),
    theta_values=(4, 8, 10, 12, 16),
    theta_ncust=400,
    theta_minsup=0.02,
    nitems=400,
    npats=400,
)

#: Fast sanity scale used by the pytest-benchmark files and CI.
SMOKE_SCALE = Scale(
    name="smoke",
    fig8_ncust=(200, 400),
    fig8_minsup=0.03,
    fig9_ncust=200,
    fig9_minsups=(0.06, 0.04),
    theta_values=(4, 6),
    theta_ncust=150,
    theta_minsup=0.04,
    nitems=200,
    npats=200,
)

#: Larger runs (~10-30 min for the full suite): a tenth of the paper's
#: customer counts, for the scalability datapoints in EXPERIMENTS.md.
LARGE_SCALE = Scale(
    name="large",
    fig8_ncust=(5_000, 10_000, 20_000),
    fig8_minsup=0.01,
    fig9_ncust=2_000,
    fig9_minsups=(0.02, 0.015, 0.01, 0.0075),
    theta_values=(8, 12, 16),
    theta_ncust=1_000,
    theta_minsup=0.015,
    nitems=600,
    npats=1_000,
)

#: The paper's original parameters.  Pure-Python runtimes are hours; kept
#: for completeness and documented in EXPERIMENTS.md.
PAPER_SCALE = Scale(
    name="paper",
    fig8_ncust=(50_000, 100_000, 200_000, 300_000, 400_000, 500_000),
    fig8_minsup=0.0025,
    fig9_ncust=10_000,
    fig9_minsups=(0.02, 0.0175, 0.015, 0.0125, 0.01, 0.0075, 0.005, 0.0025),
    theta_values=(10, 15, 20, 25, 30, 35, 40),
    theta_ncust=50_000,
    theta_minsup=0.005,
    nitems=1000,
    npats=5000,
)

SCALES = {
    scale.name: scale
    for scale in (REPRO_SCALE, SMOKE_SCALE, LARGE_SCALE, PAPER_SCALE)
}


@dataclass(slots=True)
class ExperimentResult:
    """Rows regenerating one paper table or figure."""

    experiment: str
    paper_reference: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """The rows as an aligned ASCII table with notes."""
        title = f"{self.experiment} — {self.paper_reference}"
        text = render_table(self.headers, self.rows, title=title)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def render_markdown(self) -> str:
        """The rows as a markdown table (EXPERIMENTS.md building block)."""
        from repro.bench.reporting import render_markdown

        title = f"{self.experiment} — {self.paper_reference}"
        text = render_markdown(self.headers, self.rows, title=title)
        if self.notes:
            text += "\n\n" + "\n".join(f"*{note}*" for note in self.notes)
        return text

    def to_dict(self) -> dict:
        """JSON-serialisable form (machine-readable experiment output)."""
        return {
            "experiment": self.experiment,
            "paper_reference": self.paper_reference,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }


def timed_mine(
    db: SequenceDatabase, minsup: float, algorithm: str, **options
) -> tuple[float, int]:
    """(seconds, number of frequent sequences) for one mining run."""
    started = time.perf_counter()
    result = mine(db, minsup, algorithm=algorithm, **options)
    return time.perf_counter() - started, len(result)


def observed_mine(
    db: SequenceDatabase, minsup: float, algorithm: str, **options
) -> MiningResult:
    """One instrumented mining run; the result carries its RunReport.

    The report is the same document ``repro mine --metrics-json`` writes,
    so benchmark trajectories (``BENCH_*.json``) and ad-hoc CLI runs stay
    directly comparable.
    """
    return mine(db, minsup, algorithm=algorithm, observe=True, **options)


def run_experiment(name: str, scale: str = "repro") -> ExperimentResult:
    """Run one named experiment at the given scale (see EXPERIMENTS)."""
    from repro.bench.experiments import EXPERIMENTS

    try:
        driver: Callable[[Scale], ExperimentResult] = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    return driver(SCALES[scale])
