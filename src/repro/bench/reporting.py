"""Plain-text rendering of experiment outputs (system S21).

The harness prints the same rows and series the paper reports, as aligned
ASCII tables.  Keeping rendering separate from measurement lets the tests
assert on data, not formatting.
"""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object) -> str:
    """Human formatting: floats get 4 significant digits, None a dash."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(format_cell(value) for value in row) + " |")
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
) -> str:
    """Render one figure-style result: x column plus one column per line."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[i] for values in series.values())]
        for i, x in enumerate(xs)
    ]
    return render_table(headers, rows, title=title)
