"""Public mining entry point (system S20).

:func:`mine` is the one function a downstream user needs: give it a
database, a support threshold (absolute count or fraction) and an
algorithm name, get a :class:`~repro.mining.result.MiningResult` back.
"""

from __future__ import annotations

import time

from repro.core.sequence import seq_length
from repro.db.database import SequenceDatabase
from repro.exceptions import InvalidParameterError
from repro.mining.registry import get_algorithm
from repro.mining.result import MiningResult
from repro.obs import NOOP_OBSERVATION, RunReport, activated, observation


def mine(
    db: SequenceDatabase,
    min_support: float | int,
    algorithm: str = "disc-all",
    closed: bool = False,
    maximal: bool = False,
    min_length: int | None = None,
    max_length: int | None = None,
    observe: bool = False,
    **options,
) -> MiningResult:
    """Mine every frequent sequence of *db*.

    *min_support* is an absolute support count when given as an ``int``,
    or a fraction of the database size when given as a ``float`` in
    (0, 1] — the paper's "minimum support threshold".  *algorithm* names
    a registered miner (``disc-all`` by default, the paper's bi-level
    configuration); extra keyword *options* are forwarded to it (e.g.
    ``gamma=`` for ``dynamic-disc-all``).

    ``closed=True`` / ``maximal=True`` post-filter to the closed or
    maximal subset; *min_length* / *max_length* bound pattern lengths.
    The filters compose: closed/maximal are computed over the full
    result first, then the length bounds apply.

    ``observe=True`` runs the miner under a live :mod:`repro.obs`
    observation and attaches its :class:`~repro.obs.RunReport` (span tree
    plus metric snapshot) to the result.  The default keeps the no-op
    instrumentation, so the hot path pays nothing.

    ``elapsed_seconds`` covers the full run — mining *and* the
    closed/maximal/length post-filters (the filters dominate on dense
    results, so excluding them would misstate the cost).

    A sequence is frequent when its support count is >= the resolved
    threshold (see DESIGN.md on the >= convention).
    """
    if closed and maximal:
        raise InvalidParameterError("choose at most one of closed/maximal")
    delta = db.delta_for(min_support)
    miner = get_algorithm(algorithm)
    obs = observation() if observe else NOOP_OBSERVATION
    started = time.perf_counter()
    with activated(obs), obs.tracer.span("mine", algorithm=algorithm, delta=delta):
        with obs.tracer.span("algorithm"):
            patterns = miner(db.members(), delta, **options)
        result = MiningResult(
            patterns=patterns,
            delta=delta,
            algorithm=algorithm,
            database_size=len(db),
            _vocabulary=db.vocabulary,
        )
        with obs.tracer.span("post_filter", closed=closed, maximal=maximal):
            if closed:
                result = _replace_patterns(result, result.closed_patterns())
            elif maximal:
                result = _replace_patterns(result, result.maximal_patterns())
            if min_length is not None or max_length is not None:
                lo = min_length if min_length is not None else 1
                hi = max_length if max_length is not None else float("inf")
                if lo < 1 or hi < lo:
                    raise InvalidParameterError(
                        f"invalid length bounds [{min_length}, {max_length}]"
                    )
                result = _replace_patterns(
                    result,
                    {
                        raw: count
                        for raw, count in result.patterns.items()
                        if lo <= seq_length(raw) <= hi
                    },
                )
    elapsed = time.perf_counter() - started
    return _replace_patterns(
        result,
        result.patterns,
        elapsed_seconds=elapsed,
        report=obs.report() if observe else None,
    )


def _replace_patterns(
    result: MiningResult,
    patterns: dict,
    elapsed_seconds: float | None = None,
    report: "RunReport | None" = None,
) -> MiningResult:
    """A copy of *result* with a different pattern map."""
    return MiningResult(
        patterns=patterns,
        delta=result.delta,
        algorithm=result.algorithm,
        database_size=result.database_size,
        elapsed_seconds=(
            result.elapsed_seconds if elapsed_seconds is None else elapsed_seconds
        ),
        report=result.report if report is None else report,
        _vocabulary=result._vocabulary,
    )
