"""Public mining entry point (system S20).

:func:`mine` is the one function a downstream user needs: give it a
database, a support threshold (absolute count or fraction) and an
algorithm name, get a :class:`~repro.mining.result.MiningResult` back.

Runs of resumable algorithms (see
:data:`~repro.mining.registry.RESUMABLE_ALGORITHMS`) are fault
tolerant: a deadline or cancellation returns a *partial* result
(``complete=False``) carrying a resume checkpoint instead of raising,
and ``mine(..., resume_from=checkpoint)`` continues a run from its last
completed boundary after validating that the database, threshold,
algorithm and options all still match.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.core.checkpoint import (
    CheckpointIdentity,
    CheckpointRecorder,
    CheckpointSink,
    MiningCheckpoint,
    options_fingerprint,
    recording_scope,
)
from repro.core.sequence import seq_length
from repro.db.database import SequenceDatabase
from repro.exceptions import InvalidParameterError, OperationCancelledError
from repro.mining.registry import get_algorithm, supports_resume
from repro.mining.result import MiningResult
from repro.obs import NOOP_OBSERVATION, RunReport, activated, observation
from repro.obs import events as obs_events
from repro.obs.trace_context import current_trace


def run_identity(
    db: SequenceDatabase,
    min_support: float | int,
    algorithm: str,
    options: Mapping[str, Any],
) -> CheckpointIdentity:
    """The checkpoint identity of a prospective :func:`mine` call.

    Services use this to validate a stored checkpoint against a run
    *before* enqueueing it (:meth:`MiningCheckpoint.validate_for`).
    """
    return CheckpointIdentity(
        database_digest=db.content_digest(),
        delta=db.delta_for(min_support),
        algorithm=algorithm,
        options_fingerprint=options_fingerprint(options),
    )


def mine(
    db: SequenceDatabase,
    min_support: float | int,
    algorithm: str = "disc-all",
    closed: bool = False,
    maximal: bool = False,
    min_length: int | None = None,
    max_length: int | None = None,
    observe: bool = False,
    resume_from: MiningCheckpoint | None = None,
    checkpoint_to: CheckpointSink | None = None,
    **options,
) -> MiningResult:
    """Mine every frequent sequence of *db*.

    *min_support* is an absolute support count when given as an ``int``,
    or a fraction of the database size when given as a ``float`` in
    (0, 1] — the paper's "minimum support threshold".  *algorithm* names
    a registered miner (``disc-all`` by default, the paper's bi-level
    configuration); extra keyword *options* are forwarded to it (e.g.
    ``gamma=`` for ``dynamic-disc-all``).

    ``closed=True`` / ``maximal=True`` post-filter to the closed or
    maximal subset; *min_length* / *max_length* bound pattern lengths.
    The filters compose: closed/maximal are computed over the full
    result first, then the length bounds apply.

    ``observe=True`` runs the miner under a live :mod:`repro.obs`
    observation and attaches its :class:`~repro.obs.RunReport` (span tree
    plus metric snapshot) to the result.  The default keeps the no-op
    instrumentation, so the hot path pays nothing.

    For resumable algorithms, cancellation and deadlines yield a partial
    result (``complete=False`` with a resume checkpoint) rather than an
    exception — post-filters are *not* applied to partial results, since
    closed/maximal sets over incomplete patterns would mislead.
    ``resume_from`` continues such a run; its fingerprint must match
    this call exactly (:class:`~repro.exceptions.CheckpointMismatchError`
    otherwise).  ``checkpoint_to`` receives a fresh
    :class:`~repro.core.checkpoint.MiningCheckpoint` at every completed
    boundary, which is how the mining service journals progress.

    ``elapsed_seconds`` covers the full run — mining *and* the
    closed/maximal/length post-filters (the filters dominate on dense
    results, so excluding them would misstate the cost).

    A sequence is frequent when its support count is >= the resolved
    threshold (see DESIGN.md on the >= convention).
    """
    if closed and maximal:
        raise InvalidParameterError("choose at most one of closed/maximal")
    if min_length is not None or max_length is not None:
        lo_check = min_length if min_length is not None else 1
        hi_check = max_length if max_length is not None else float("inf")
        if lo_check < 1 or hi_check < lo_check:
            raise InvalidParameterError(
                f"invalid length bounds [{min_length}, {max_length}]"
            )
    delta = db.delta_for(min_support)
    miner = get_algorithm(algorithm)
    resumable = supports_resume(algorithm)
    if not resumable and (resume_from is not None or checkpoint_to is not None):
        raise InvalidParameterError(
            f"algorithm {algorithm!r} does not support checkpoint/resume"
        )
    recorder: CheckpointRecorder | None = None
    if resumable:
        # The recorder itself is watermark bookkeeping — O(1) per round
        # boundary.  The database digest (one full scan) is only paid
        # when a checkpoint is actually consumed or produced.
        if resume_from is not None:
            resume_from.validate_for(run_identity(db, delta, algorithm, options))
        recorder = CheckpointRecorder(resume_from=resume_from, sink=checkpoint_to)
        if checkpoint_to is not None:
            recorder.bind_identity(run_identity(db, delta, algorithm, options))

    obs = observation() if observe else NOOP_OBSERVATION
    started = time.perf_counter()
    checkpoint: MiningCheckpoint | None = None
    # A run under an ambient trace (a service job, a traced CLI run)
    # stamps the trace id on its root span, so the RunReport — and any
    # cache entry built from it — stays joinable with journal records
    # and event-log lines long after the job object is gone.
    span_attrs: dict[str, Any] = {"algorithm": algorithm, "delta": delta}
    trace = current_trace()
    if trace is not None:
        span_attrs["trace_id"] = trace.trace_id
    with activated(obs), obs.tracer.span("mine", **span_attrs):
        with obs.tracer.span("algorithm"):
            if recorder is None:
                patterns = miner(db.members(), delta, **options)
            else:
                with recording_scope(recorder):
                    try:
                        patterns = miner(db.members(), delta, **options)
                    except OperationCancelledError:
                        if not recorder.attached:
                            raise  # the run never reached its first boundary
                        checkpoint = recorder.capture(
                            run_identity(db, delta, algorithm, options)
                        )
                        patterns = dict(checkpoint.patterns)
        result = MiningResult(
            patterns=patterns,
            delta=delta,
            algorithm=algorithm,
            database_size=len(db),
            complete=checkpoint is None,
            completed_k=0 if checkpoint is None else checkpoint.completed_k,
            checkpoint=checkpoint,
            _vocabulary=db.vocabulary,
        )
        if checkpoint is None:
            with obs.tracer.span("post_filter", closed=closed, maximal=maximal):
                if closed:
                    result = _replace_patterns(result, result.closed_patterns())
                elif maximal:
                    result = _replace_patterns(result, result.maximal_patterns())
                if min_length is not None or max_length is not None:
                    lo = min_length if min_length is not None else 1
                    hi = max_length if max_length is not None else float("inf")
                    result = _replace_patterns(
                        result,
                        {
                            raw: count
                            for raw, count in result.patterns.items()
                            if lo <= seq_length(raw) <= hi
                        },
                    )
    elapsed = time.perf_counter() - started
    report = obs.report() if observe else None
    if report is not None and obs_events.enabled():
        # narrate per-phase attribution into the event log — outside the
        # mining loop, once per run, only when both sides are enabled
        for phase, seconds in report.phase_totals().items():
            obs_events.emit(
                "mine.phase",
                phase=phase,
                seconds=round(seconds, 6),
                algorithm=algorithm,
            )
    return _replace_patterns(
        result,
        result.patterns,
        elapsed_seconds=elapsed,
        report=report,
    )


def _replace_patterns(
    result: MiningResult,
    patterns: dict,
    elapsed_seconds: float | None = None,
    report: "RunReport | None" = None,
) -> MiningResult:
    """A copy of *result* with a different pattern map."""
    return MiningResult(
        patterns=patterns,
        delta=result.delta,
        algorithm=result.algorithm,
        database_size=result.database_size,
        elapsed_seconds=(
            result.elapsed_seconds if elapsed_seconds is None else elapsed_seconds
        ),
        complete=result.complete,
        completed_k=result.completed_k,
        checkpoint=result.checkpoint,
        report=result.report if report is None else report,
        _vocabulary=result._vocabulary,
    )
