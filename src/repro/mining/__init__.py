"""Unified mining API (system S20): one entry point, many algorithms."""

from repro.mining.api import mine
from repro.mining.registry import available_algorithms, get_algorithm, register_algorithm
from repro.mining.result import MiningResult

__all__ = [
    "mine",
    "MiningResult",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
]
