"""Algorithm registry (system S20).

Every miner is a callable ``(members, delta, **options) -> dict`` mapping
frequent raw sequences to supports.  The registry gives them stable names
for the API, CLI and benchmark harness; downstream code can register its
own variants.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.baselines.bruteforce import mine_bruteforce
from repro.baselines.gsp import mine_gsp
from repro.baselines.prefixspan import mine_prefixspan
from repro.baselines.pseudo import mine_pseudo_prefixspan
from repro.baselines.spade import mine_spade
from repro.baselines.spam import mine_spam
from repro.core.discall import disc_all
from repro.core.dynamic import dynamic_disc_all, multilevel_disc_all
from repro.core.parallel import disc_all_parallel
from repro.core.sequence import RawSequence
from repro.exceptions import UnknownAlgorithmError

Members = Iterable[tuple[int, RawSequence]]
Miner = Callable[..., dict[RawSequence, int]]


def _disc_all(members: Members, delta: int, **options) -> dict[RawSequence, int]:
    return disc_all(members, delta, **options).patterns


def _disc_all_plain(members: Members, delta: int, **options) -> dict[RawSequence, int]:
    return disc_all(members, delta, bilevel=False, **options).patterns


def _dynamic(members: Members, delta: int, **options) -> dict[RawSequence, int]:
    return dynamic_disc_all(members, delta, **options).patterns


def _multilevel(members: Members, delta: int, **options) -> dict[RawSequence, int]:
    return multilevel_disc_all(members, delta, **options).patterns


def _parallel(members: Members, delta: int, **options) -> dict[RawSequence, int]:
    return disc_all_parallel(members, delta, **options).patterns


_REGISTRY: dict[str, Miner] = {}

#: The four strategies of the paper's Table 5.
CANDIDATE_PRUNING = "candidate sequence pruning"
DATABASE_PARTITIONING = "database partitioning"
CUSTOMER_REDUCING = "customer sequence reducing"
DISC = "DISC"

_ALL_FOUR = frozenset(
    {CANDIDATE_PRUNING, DATABASE_PARTITIONING, CUSTOMER_REDUCING, DISC}
)

#: Which strategies each registered algorithm employs (Table 5, extended
#: with this repository's variants).
STRATEGIES: dict[str, frozenset[str]] = {
    "gsp": frozenset({CANDIDATE_PRUNING}),
    "spade": frozenset({CANDIDATE_PRUNING, DATABASE_PARTITIONING}),
    "spam": frozenset({CANDIDATE_PRUNING, DATABASE_PARTITIONING}),
    "prefixspan": frozenset(
        {CANDIDATE_PRUNING, DATABASE_PARTITIONING, CUSTOMER_REDUCING}
    ),
    "pseudo": frozenset(
        {CANDIDATE_PRUNING, DATABASE_PARTITIONING, CUSTOMER_REDUCING}
    ),
    "disc-all": _ALL_FOUR,
    "disc-all-plain": _ALL_FOUR,
    "disc-all-parallel": _ALL_FOUR,
    "dynamic-disc-all": _ALL_FOUR,
    "multilevel-disc-all": _ALL_FOUR,
    "bruteforce": frozenset({CANDIDATE_PRUNING}),
}


#: Miners wired to the checkpoint recorder (:mod:`repro.core.checkpoint`):
#: the DISC-all variants whose partition loops notify round boundaries.
#: Mutable so :func:`register_algorithm` can admit new resumable miners
#: (the cluster coordinator registers ``disc-all-cluster`` at serve time).
RESUMABLE_ALGORITHMS: set[str] = {
    "disc-all", "disc-all-plain", "disc-all-parallel"
}


def supports_resume(name: str) -> bool:
    """Whether *name* participates in checkpoint/resume.

    Only resumable miners can honour ``mine(resume_from=...)`` or emit
    checkpoints; for every other algorithm cancellation still unwinds
    with :class:`~repro.exceptions.OperationCancelledError`.
    """
    return name in RESUMABLE_ALGORITHMS


def strategies_of(name: str) -> frozenset[str]:
    """The Table-5 strategies used by a registered algorithm."""
    if name not in _REGISTRY:
        raise UnknownAlgorithmError(f"unknown algorithm {name!r}")
    return STRATEGIES.get(name, frozenset())


def register_algorithm(
    name: str,
    miner: Miner,
    replace: bool = False,
    strategies: Iterable[str] | None = None,
    resumable: bool = False,
) -> None:
    """Register *miner* under *name*; refuses silent overwrites.

    *strategies* records the Table-5 strategies the miner employs (shown
    by ``strategies_of``); *resumable* declares that the miner notifies
    the active :class:`~repro.core.checkpoint.CheckpointRecorder` at
    partition boundaries, admitting it to checkpoint/resume.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(f"algorithm {name!r} already registered")
    _REGISTRY[name] = miner
    if strategies is not None:
        STRATEGIES[name] = frozenset(strategies)
    if resumable:
        RESUMABLE_ALGORITHMS.add(name)


def get_algorithm(name: str) -> Miner:
    """Resolve a miner by name; raises UnknownAlgorithmError."""
    try:
        return _REGISTRY[name]
    except KeyError:
        # repro: allow[DISC002] — algorithm name strings, not sequences
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; known: {known}"
        ) from None


def available_algorithms() -> list[str]:
    """Names of all registered algorithms, sorted."""
    # repro: allow[DISC002] — algorithm name strings, not sequences
    return sorted(_REGISTRY)


for _name, _miner in {
    "disc-all": _disc_all,
    "disc-all-plain": _disc_all_plain,
    "dynamic-disc-all": _dynamic,
    "multilevel-disc-all": _multilevel,
    "disc-all-parallel": _parallel,
    "prefixspan": mine_prefixspan,
    "pseudo": mine_pseudo_prefixspan,
    "gsp": mine_gsp,
    "spade": mine_spade,
    "spam": mine_spam,
    "bruteforce": mine_bruteforce,
}.items():
    register_algorithm(_name, _miner)
