"""Mining result container (system S20).

A :class:`MiningResult` wraps the pattern -> support map every miner
produces, together with the run's metadata, and offers the queries a
downstream user needs: support lookup, filtering by length or prefix,
maximal patterns, decoding through the database vocabulary, and exact
comparison against another result (the property the test suite leans on:
all miners must agree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterator, cast

from repro.core.order import sort_key
from repro.core.sequence import (
    RawSequence,
    Sequence,
    contains,
    flatten,
    format_seq,
    k_prefix,
    parse,
    seq_length,
)

if TYPE_CHECKING:
    from repro.core.checkpoint import MiningCheckpoint
    from repro.db.vocabulary import Vocabulary
    from repro.obs import RunReport


@dataclass(frozen=True)
class MiningResult:
    """Frequent sequences of one mining run.

    A result may be *partial*: when a run is cancelled or hits its
    deadline, :func:`repro.mine` returns the patterns of every completed
    checkpoint boundary with ``complete=False`` instead of raising.  A
    partial result carries the resume checkpoint that continues the run
    (``mine(..., resume_from=result.checkpoint)``) and ``completed_k``,
    the highest pattern length whose discovery round finished in the
    partition that was interrupted (0 between partitions).
    """

    patterns: dict[RawSequence, int]
    delta: int
    algorithm: str
    database_size: int
    elapsed_seconds: float = 0.0
    #: False when the run stopped at a checkpoint boundary; ``patterns``
    #: then covers completed work only
    complete: bool = True
    #: highest fully-discovered pattern length of an interrupted partition
    completed_k: int = 0
    #: resume checkpoint of a partial run (None when complete)
    checkpoint: "MiningCheckpoint | None" = field(
        default=None, repr=False, compare=False
    )
    #: instrumentation snapshot; populated by ``mine(observe=True)``
    report: "RunReport | None" = field(default=None, repr=False, compare=False)
    _vocabulary: "Vocabulary | None" = field(default=None, repr=False, compare=False)

    # -- lookups -------------------------------------------------------------

    def support(self, pattern: Sequence | RawSequence | str) -> int:
        """Support count of *pattern*; 0 when it is not frequent."""
        return self.patterns.get(self._raw_of(pattern), 0)

    def __contains__(self, pattern: object) -> bool:
        if not isinstance(pattern, (Sequence, str, tuple)):
            return False
        try:
            raw = self._raw_of(pattern)
        except (TypeError, ValueError):
            return False
        return raw in self.patterns

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[Sequence]:
        for raw in self.sorted_patterns():
            yield Sequence.from_raw(raw)

    @staticmethod
    def _raw_of(pattern: Sequence | RawSequence | str) -> RawSequence:
        if isinstance(pattern, Sequence):
            return pattern.raw
        if isinstance(pattern, str):
            return parse(pattern)
        return pattern

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "MiningResult") -> "MiningResult":
        """This result combined with a *disjoint* shard's result.

        The cluster coordinator folds per-partition results with this:
        both sides must describe the same run (delta, algorithm and
        database size — :class:`InvalidParameterError` otherwise) and
        their pattern maps must be disjoint.  First-level partitions
        never share a pattern, so any overlap means mis-built shards and
        raises :class:`ShardOverlapError` instead of silently corrupting
        supports.  Patterns come back in canonical comparative order,
        reports merge via :meth:`RunReport.merge`, and the merged result
        is complete only when both sides are.
        """
        from repro.exceptions import InvalidParameterError, ShardOverlapError

        if (
            self.delta != other.delta
            or self.algorithm != other.algorithm
            or self.database_size != other.database_size
        ):
            raise InvalidParameterError(
                "cannot merge results of different runs: "
                f"(delta={self.delta}, algorithm={self.algorithm!r}, "
                f"|DB|={self.database_size}) vs (delta={other.delta}, "
                f"algorithm={other.algorithm!r}, |DB|={other.database_size})"
            )
        overlap = self.patterns.keys() & other.patterns.keys()
        if overlap:
            sample = format_seq(min(overlap, key=sort_key))
            raise ShardOverlapError(
                f"{len(overlap)} patterns claimed by both shards "
                f"(e.g. {sample}); first-level partitions are disjoint, "
                "so overlapping shard results are mis-built"
            )
        combined = {**self.patterns, **other.patterns}
        ordered = {raw: combined[raw] for raw in sorted(combined, key=sort_key)}
        report = self.report
        if report is not None and other.report is not None:
            report = report.merge(other.report)
        elif report is None:
            report = other.report
        return MiningResult(
            patterns=ordered,
            delta=self.delta,
            algorithm=self.algorithm,
            database_size=self.database_size,
            elapsed_seconds=max(self.elapsed_seconds, other.elapsed_seconds),
            complete=self.complete and other.complete,
            completed_k=0,
            checkpoint=None,
            report=report,
            _vocabulary=self._vocabulary or other._vocabulary,
        )

    # -- views ---------------------------------------------------------------

    def sorted_patterns(self) -> list[RawSequence]:
        """All frequent sequences in comparative order, shortest first."""
        return sorted(self.patterns, key=lambda raw: (seq_length(raw), flatten(raw)))

    def of_length(self, k: int) -> dict[RawSequence, int]:
        """Frequent k-sequences with their supports."""
        return {
            raw: count
            for raw, count in self.patterns.items()
            if seq_length(raw) == k
        }

    def max_length(self) -> int:
        """Length of the longest frequent sequence (0 when none)."""
        return max((seq_length(raw) for raw in self.patterns), default=0)

    def length_histogram(self) -> dict[int, int]:
        """Number of frequent sequences per length."""
        histogram: dict[int, int] = {}
        for raw in self.patterns:
            length = seq_length(raw)
            histogram[length] = histogram.get(length, 0) + 1
        # repro: allow[DISC002] — scalar int lengths, not sequences
        return dict(sorted(histogram.items()))

    def closed_patterns(self) -> dict[RawSequence, int]:
        """Frequent sequences with no super-pattern of equal support.

        The closed set loses no information: every frequent sequence's
        support is the maximum support among the closed patterns
        containing it.
        """
        by_support: dict[int, list[RawSequence]] = {}
        for raw, count in self.patterns.items():
            by_support.setdefault(count, []).append(raw)
        closed: dict[RawSequence, int] = {}
        for count, group in by_support.items():
            # A closer must have the same support (supersets can only
            # have smaller-or-equal support), so compare within groups.
            group_sorted = sorted(group, key=seq_length, reverse=True)
            kept: list[RawSequence] = []
            for raw in group_sorted:
                if not any(contains(other, raw) for other in kept):
                    kept.append(raw)
                    closed[raw] = count
        return closed

    def maximal_patterns(self) -> dict[RawSequence, int]:
        """Frequent sequences not contained in any longer frequent one."""
        by_length = sorted(self.patterns, key=seq_length, reverse=True)
        maximal: list[RawSequence] = []
        result: dict[RawSequence, int] = {}
        for raw in by_length:
            if not any(contains(other, raw) for other in maximal):
                maximal.append(raw)
                result[raw] = self.patterns[raw]
        return result

    def support_of_items(self, itemsets: list[list[Hashable]]) -> int:
        """Support of a pattern given in original (vocabulary) items.

        Items absent from the vocabulary make the pattern trivially
        infrequent, so 0 is returned rather than an error.
        """
        vocab = self._vocabulary
        if vocab is None:
            # Without a vocabulary the items must already be internal ids.
            int_itemsets = cast("list[list[int]]", itemsets)
            # repro: allow[DISC002] — scalar int items within one itemset
            return self.support(tuple(tuple(sorted(txn)) for txn in int_itemsets))
        from repro.exceptions import InvalidDatabaseError

        try:
            raw = vocab.encode(itemsets)
        except InvalidDatabaseError:
            return 0
        return self.support(raw)

    def decoded(self) -> list[tuple[list[list[Hashable]], int]]:
        """Patterns translated back through the database vocabulary."""
        vocab = self._vocabulary
        rows: list[tuple[list[list[Hashable]], int]] = []
        for raw in self.sorted_patterns():
            if vocab is None:
                decoded = [list(txn) for txn in raw]
            else:
                decoded = vocab.decode(raw)
            rows.append((decoded, self.patterns[raw]))
        return rows

    # -- comparisons -----------------------------------------------------------

    def same_patterns(self, other: "MiningResult") -> bool:
        """True when both runs found identical patterns with equal supports."""
        return self.patterns == other.patterns

    def difference(self, other: "MiningResult") -> dict[str, list[str]]:
        """Human-readable diff against another result (debugging aid)."""
        mine_keys = set(self.patterns)
        their_keys = set(other.patterns)
        return {
            "only_here": [
                format_seq(raw)
                for raw in sorted(mine_keys - their_keys, key=sort_key)
            ],
            "only_there": [
                format_seq(raw)
                for raw in sorted(their_keys - mine_keys, key=sort_key)
            ],
            "support_mismatch": [
                f"{format_seq(raw)}: {self.patterns[raw]} != {other.patterns[raw]}"
                for raw in sorted(mine_keys & their_keys, key=sort_key)
                if self.patterns[raw] != other.patterns[raw]
            ],
        }

    def render_tree(
        self,
        max_depth: int | None = None,
        min_support: int | None = None,
    ) -> str:
        """The frequent sequences as an indented prefix tree.

        Each pattern nests under its (k-1)-prefix; mining results are
        downward-closed so every pattern has a parent in the map.
        *max_depth* limits the pattern length shown, *min_support* hides
        weaker branches.  Useful for eyeballing a result in a terminal.
        """
        children: dict[RawSequence | None, list[RawSequence]] = {}
        for raw in self.patterns:
            if min_support is not None and self.patterns[raw] < min_support:
                continue
            length = seq_length(raw)
            if max_depth is not None and length > max_depth:
                continue
            parent = None if length == 1 else k_prefix(raw, length - 1)
            children.setdefault(parent, []).append(raw)
        for group in children.values():
            group.sort(key=flatten)
        lines: list[str] = []

        def walk(parent: RawSequence | None, indent: int) -> None:
            for raw in children.get(parent, ()):
                lines.append(
                    "  " * indent + f"{format_seq(raw)}: {self.patterns[raw]}"
                )
                walk(raw, indent + 1)

        walk(None, 0)
        return "\n".join(lines)

    def summary(self) -> str:
        """One-paragraph human summary of the run."""
        histogram = ", ".join(
            f"L{length}: {count}" for length, count in self.length_histogram().items()
        )
        return (
            f"{self.algorithm}: {len(self)} frequent sequences "
            f"(delta={self.delta}, |DB|={self.database_size}, "
            f"{self.elapsed_seconds:.3f}s) [{histogram or 'none'}]"
        )
