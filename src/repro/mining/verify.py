"""Mining-result verification (system S20).

Independent checks that a pattern -> support map is internally and
externally consistent.  Useful as a safety net when registering custom
algorithms and as a debugging tool; the CLI exposes it as
``repro verify``.

Checks
------

1. **Support exactness** — recount each pattern's support by containment
   scan (optionally on a sample, for large results).
2. **Downward closure** — every (k-1)-prefix of a reported pattern is
   reported, with support at least as large (true for frequent-pattern
   results even though DISC itself does not *use* the property).
3. **Threshold** — every reported support reaches delta.
4. **Completeness (sampled)** — random extensions of reported patterns
   that meet delta must themselves be reported.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.kminimum import build_extension, extension_pairs
from repro.core.sequence import (
    RawSequence,
    format_seq,
    k_prefix,
    seq_length,
    support_count,
)


@dataclass(slots=True)
class VerificationReport:
    """Outcome of :func:`verify_patterns`."""

    checked_supports: int = 0
    checked_prefixes: int = 0
    checked_extensions: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.errors)} ERRORS"
        return (
            f"verification {state}: {self.checked_supports} supports, "
            f"{self.checked_prefixes} prefixes, "
            f"{self.checked_extensions} extension probes"
        )


def verify_patterns(
    patterns: dict[RawSequence, int],
    sequences: list[RawSequence],
    delta: int,
    sample: int | None = None,
    seed: int = 0,
    max_errors: int = 20,
) -> VerificationReport:
    """Verify a pattern -> support map against the raw database.

    *sample* bounds the number of patterns whose support is recounted
    (None = all).  The report collects at most *max_errors* messages.
    """
    report = VerificationReport()
    rng = random.Random(seed)
    keys = list(patterns)
    if sample is not None and len(keys) > sample:
        keys = rng.sample(keys, sample)

    def record(message: str) -> None:
        if len(report.errors) < max_errors:
            report.errors.append(message)

    for pattern in keys:
        count = patterns[pattern]
        true_count = support_count(sequences, pattern)
        report.checked_supports += 1
        if count != true_count:
            record(
                f"support mismatch {format_seq(pattern)}: "
                f"reported {count}, actual {true_count}"
            )
        if count < delta:
            record(
                f"below threshold {format_seq(pattern)}: {count} < {delta}"
            )

    for pattern in patterns:
        length = seq_length(pattern)
        if length <= 1:
            continue
        prefix = k_prefix(pattern, length - 1)
        report.checked_prefixes += 1
        if prefix not in patterns:
            record(
                f"missing prefix {format_seq(prefix)} of {format_seq(pattern)}"
            )
        elif patterns[prefix] < patterns[pattern]:
            record(
                f"anti-monotonicity violated: {format_seq(prefix)} "
                f"({patterns[prefix]}) < {format_seq(pattern)} "
                f"({patterns[pattern]})"
            )

    # Sampled completeness: grow random reported patterns by one item.
    probes = min(len(patterns), sample if sample is not None else 200)
    for pattern in rng.sample(list(patterns), probes) if patterns else []:
        pairs = set()
        for seq in sequences:
            pairs |= extension_pairs(seq, pattern)
        # repro: allow[DISC002] — extension pairs are flat (item, no) keys;
        # their natural order *is* the comparative order (shared prefix)
        for pair in sorted(pairs):
            grown = build_extension(pattern, pair)
            count = support_count(sequences, grown)
            report.checked_extensions += 1
            if count >= delta and grown not in patterns:
                record(
                    f"missing frequent extension {format_seq(grown)} "
                    f"(support {count})"
                )
    return report
