"""Saving and loading mining results (system S20).

Results serialise to a small JSON document: run metadata plus one
``[pattern, support]`` entry per frequent sequence, patterns as nested
item lists.  The loader rebuilds a full :class:`MiningResult` (without
the originating database's vocabulary — decoded item names are a
property of the database, not the run).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.core.order import sort_key
from repro.core.sequence import canonical
from repro.exceptions import DataFormatError
from repro.mining.result import MiningResult
from repro.obs import RunReport

_FORMAT = "repro.mining-result"
_VERSION = 1


def save_result(
    result: MiningResult,
    target: str | Path | TextIO,
    include_report: bool = False,
) -> None:
    """Write *result* as JSON.

    *include_report* embeds the run's instrumentation
    :class:`~repro.obs.RunReport` (when the result carries one) so a
    saved run keeps its metrics and span tree; it is off by default to
    keep result files small and runs comparable byte-for-byte.
    """
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "algorithm": result.algorithm,
        "delta": result.delta,
        "database_size": result.database_size,
        "elapsed_seconds": result.elapsed_seconds,
        "complete": result.complete,
        "completed_k": result.completed_k,
        "patterns": [
            [[list(txn) for txn in raw], count]
            for raw, count in sorted(
                result.patterns.items(), key=lambda entry: sort_key(entry[0])
            )
        ],
    }
    if include_report and result.report is not None:
        payload["report"] = result.report.to_dict()
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
    else:
        json.dump(payload, target, indent=1)


def load_result(source: str | Path | TextIO) -> MiningResult:
    """Read a result written by :func:`save_result`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise DataFormatError("not a repro mining-result document")
    if payload.get("version") != _VERSION:
        raise DataFormatError(
            f"unsupported mining-result version {payload.get('version')!r}"
        )
    try:
        patterns = {
            canonical(entry[0]): int(entry[1]) for entry in payload["patterns"]
        }
        report = None
        if "report" in payload:
            report = RunReport.from_dict(payload["report"])
        return MiningResult(
            patterns=patterns,
            delta=int(payload["delta"]),
            algorithm=str(payload["algorithm"]),
            database_size=int(payload["database_size"]),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            # defaults keep documents from before partial results loadable
            complete=bool(payload.get("complete", True)),
            completed_k=int(payload.get("completed_k", 0)),
            report=report,
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise DataFormatError(f"malformed mining-result document: {exc}") from exc
