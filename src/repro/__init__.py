"""repro — a faithful reproduction of the DISC sequential-pattern miner.

This package implements "An Efficient Algorithm for Mining Frequent
Sequences by a New Strategy without Support Counting" (Chiu, Wu & Chen,
ICDE 2004): the DISC strategy, the DISC-all and Dynamic DISC-all
algorithms, the baselines the paper compares against (GSP, SPADE, SPAM,
PrefixSpan, pseudo-projection PrefixSpan), an IBM Quest-style synthetic
data generator, and a benchmark harness reproducing every table and
figure of the paper's evaluation.

Quickstart
----------

>>> from repro import Sequence, SequenceDatabase, mine
>>> db = SequenceDatabase.from_texts(["(a, e, g)(b)(h)(f)(c)(b, f)",
...                                   "(b)(d, f)(e)",
...                                   "(b, f, g)",
...                                   "(f)(a, g)(b, f, h)(b, f)"])
>>> result = mine(db, min_support=2, algorithm="disc-all")
>>> result.support(Sequence.of("(a, g)(b)"))
2
"""

from repro.core.checkpoint import MiningCheckpoint
from repro.core.sequence import Sequence
from repro.db.database import SequenceDatabase
from repro.mining.api import mine
from repro.mining.result import MiningResult

__version__ = "1.0.0"

__all__ = [
    "Sequence",
    "SequenceDatabase",
    "mine",
    "MiningResult",
    "MiningCheckpoint",
    "__version__",
]
