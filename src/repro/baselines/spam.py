"""SPAM (system S17; Ayres et al., KDD 2002).

Depth-first pattern growth over *vertical bitmaps*: every item owns one
bitmap with a bit per (customer, transaction) slot; a pattern's bitmap
marks the transactions that can end one of its embeddings.

* I-step (itemset extension): AND the pattern bitmap with the item bitmap.
* S-step (sequence extension): *transform* the pattern bitmap — for each
  customer, set every bit strictly after that customer's first set bit —
  then AND with the item bitmap.

Python's arbitrary-precision integers serve as the bitmaps, so the whole
database must fit in memory — the very assumption the paper notes SPAM
makes.  SPAM's S-/I-candidate pruning is applied: a child node only
considers the items that survived at its parent.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.sequence import RawSequence, itemset_extension, sequence_extension


class _BitmapIndex:
    """Vertical bitmap layout for one database."""

    def __init__(self, members: list[tuple[int, RawSequence]]):
        self.item_bitmaps: dict[int, int] = {}
        #: per-customer (start_bit, num_transactions)
        self.ranges: list[tuple[int, int]] = []
        self.customer_masks: list[int] = []
        bit = 0
        for _, seq in members:
            start = bit
            for eid, txn in enumerate(seq):
                for item in txn:
                    self.item_bitmaps[item] = self.item_bitmaps.get(item, 0) | (
                        1 << (start + eid)
                    )
            bit += len(seq)
            self.ranges.append((start, len(seq)))
            self.customer_masks.append(((1 << len(seq)) - 1) << start)

    def support(self, bitmap: int) -> int:
        """Number of customers with at least one set bit."""
        return sum(1 for mask in self.customer_masks if bitmap & mask)

    def s_transform(self, bitmap: int) -> int:
        """Set every bit strictly after each customer's first set bit."""
        result = 0
        for start, size in self.ranges:
            full = (1 << size) - 1
            chunk = (bitmap >> start) & full
            if chunk:
                first = chunk & -chunk  # lowest set bit
                result |= (full & ~((first << 1) - 1)) << start
        return result


def mine_spam(
    members: Iterable[tuple[int, RawSequence]], delta: int
) -> dict[RawSequence, int]:
    """All frequent sequences with support >= *delta*, by SPAM."""
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    index = _BitmapIndex(list(members))
    patterns: dict[RawSequence, int] = {}
    frequent_items = sorted(
        item
        for item, bitmap in index.item_bitmaps.items()
        if index.support(bitmap) >= delta
    )
    for item in frequent_items:
        bitmap = index.item_bitmaps[item]
        pattern: RawSequence = ((item,),)
        patterns[pattern] = index.support(bitmap)
        _dfs(pattern, bitmap, frequent_items, frequent_items, index, delta, patterns)
    return patterns


def _dfs(
    pattern: RawSequence,
    bitmap: int,
    s_items: list[int],
    i_items: list[int],
    index: _BitmapIndex,
    delta: int,
    patterns: dict[RawSequence, int],
) -> None:
    """Grow *pattern* depth-first with SPAM's S- and I-steps."""
    transformed = index.s_transform(bitmap)
    last_item = pattern[-1][-1]

    surviving_s: list[tuple[int, int, int]] = []
    for item in s_items:
        grown_bitmap = transformed & index.item_bitmaps[item]
        if not grown_bitmap:
            continue
        support = index.support(grown_bitmap)
        if support >= delta:
            surviving_s.append((item, grown_bitmap, support))

    surviving_i: list[tuple[int, int, int]] = []
    for item in i_items:
        if item <= last_item:
            continue
        grown_bitmap = bitmap & index.item_bitmaps[item]
        if not grown_bitmap:
            continue
        support = index.support(grown_bitmap)
        if support >= delta:
            surviving_i.append((item, grown_bitmap, support))

    next_s = [item for item, _, _ in surviving_s]
    for item, grown_bitmap, support in surviving_s:
        grown = sequence_extension(pattern, item)
        patterns[grown] = support
        _dfs(grown, grown_bitmap, next_s, next_s, index, delta, patterns)

    next_i = [item for item, _, _ in surviving_i]
    for item, grown_bitmap, support in surviving_i:
        grown = itemset_extension(pattern, item)
        patterns[grown] = support
        _dfs(grown, grown_bitmap, next_s, next_i, index, delta, patterns)
