"""Baseline miners the paper compares against (systems S12-S17).

Every miner in this package exposes the same functional interface::

    mine(members, delta) -> dict[RawSequence, int]

where *members* is a list of ``(cid, sequence)`` pairs and the result maps
each frequent sequence to its exact support count.  All of them — and the
DISC algorithms — must return identical maps; the test suite enforces
this against the brute-force reference on randomised databases.
"""

from repro.baselines.bruteforce import mine_bruteforce
from repro.baselines.gsp import mine_gsp
from repro.baselines.prefixspan import mine_prefixspan
from repro.baselines.pseudo import mine_pseudo_prefixspan
from repro.baselines.spade import mine_spade
from repro.baselines.spam import mine_spam

__all__ = [
    "mine_bruteforce",
    "mine_gsp",
    "mine_prefixspan",
    "mine_pseudo_prefixspan",
    "mine_spade",
    "mine_spam",
]
