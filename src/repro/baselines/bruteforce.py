"""Brute-force levelwise miner (system S12) — the tests' ground truth.

Deliberately the simplest correct algorithm: grow frequent k-sequences
into (k+1)-candidates by every possible itemset/sequence extension with a
frequent item, count each candidate by a full containment scan, keep the
frequent ones.  Completeness follows from the anti-monotone property:
every frequent (k+1)-sequence is an extension of its (necessarily
frequent) k-prefix.  No data structure cleverness — this is the oracle
the fast miners are checked against, not a contender.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.counting import count_frequent_items
from repro.core.sequence import (
    RawSequence,
    contains,
    itemset_extension,
    sequence_extension,
)


def mine_bruteforce(
    members: Iterable[tuple[int, RawSequence]], delta: int
) -> dict[RawSequence, int]:
    """All frequent sequences with support >= *delta*, by exhaustive search."""
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    sequences = [seq for _, seq in members]
    item_counts = count_frequent_items(list(enumerate(sequences, 1)), delta)
    frequent_items = sorted(item_counts)
    patterns: dict[RawSequence, int] = {
        ((item,),): count for item, count in item_counts.items()
    }
    frontier: list[RawSequence] = sorted(patterns)
    while frontier:
        next_frontier: list[RawSequence] = []
        for pattern in frontier:
            for candidate in _extensions(pattern, frequent_items):
                count = sum(1 for seq in sequences if contains(seq, candidate))
                if count >= delta:
                    patterns[candidate] = count
                    next_frontier.append(candidate)
        frontier = next_frontier
    return patterns


def _extensions(pattern: RawSequence, items: list[int]) -> Iterable[RawSequence]:
    """Every canonical one-item extension of *pattern*."""
    last_item = pattern[-1][-1]
    for item in items:
        if item > last_item:
            yield itemset_extension(pattern, item)
    for item in items:
        yield sequence_extension(pattern, item)
