"""PrefixSpan with pseudo-projection (system S15; the paper's "Pseudo").

Same search as :mod:`repro.baselines.prefixspan`, but a projected
database entry is a *pointer* ``(sequence_index, transaction_index,
item_index)`` into the shared original database instead of a copied
postfix — the mechanism that "links together all the customer sequences
in a projection database" (Section 4.1).  Counting and projection read
through the pointers, so no postfix is ever materialised; the trade-off
is repeated traversal of the original sequences.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.counting import count_frequent_items
from repro.core.sequence import (
    RawSequence,
    Transaction,
    itemset_extension,
    sequence_extension,
)

#: A pseudo-projection pointer: (sequence index, transaction index of the
#: match, item index of the matched item within that transaction).
Pointer = tuple[int, int, int]


def mine_pseudo_prefixspan(
    members: Iterable[tuple[int, RawSequence]], delta: int
) -> dict[RawSequence, int]:
    """All frequent sequences with support >= *delta*, by Pseudo-PrefixSpan."""
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    members = list(members)
    sequences = [seq for _, seq in members]
    patterns: dict[RawSequence, int] = {}
    item_counts = count_frequent_items(members, delta)
    for item in sorted(item_counts):
        pattern: RawSequence = ((item,),)
        patterns[pattern] = item_counts[item]
        pointers = []
        for si, seq in enumerate(sequences):
            ptr = _find_sequence_ext(seq, si, -1, item)
            if ptr is not None:
                pointers.append(ptr)
        _grow(pattern, pointers, sequences, delta, patterns)
    return patterns


def _grow(
    pattern: RawSequence,
    pointers: list[Pointer],
    sequences: list[RawSequence],
    delta: int,
    patterns: dict[RawSequence, int],
) -> None:
    """Count extensions through the pointers and recurse (depth-first)."""
    if len(pointers) < delta:
        return
    last_itemset = set(pattern[-1])
    last_item = pattern[-1][-1]

    seq_counts: dict[int, int] = {}
    item_counts: dict[int, int] = {}
    for si, ti, pi in pointers:
        seq = sequences[si]
        item_seen: set[int] = set(seq[ti][pi + 1:])
        seq_seen: set[int] = set()
        for txn in seq[ti + 1:]:
            seq_seen.update(txn)
            if last_itemset.issubset(txn):
                item_seen.update(item for item in txn if item > last_item)
        for item in seq_seen:
            seq_counts[item] = seq_counts.get(item, 0) + 1
        for item in item_seen:
            item_counts[item] = item_counts.get(item, 0) + 1

    for item in sorted(item_counts):
        if item_counts[item] < delta:
            continue
        grown = itemset_extension(pattern, item)
        patterns[grown] = item_counts[item]
        sub = []
        for ptr in pointers:
            moved = _find_itemset_ext(sequences, ptr, last_itemset, item)
            if moved is not None:
                sub.append(moved)
        _grow(grown, sub, sequences, delta, patterns)

    for item in sorted(seq_counts):
        if seq_counts[item] < delta:
            continue
        grown = sequence_extension(pattern, item)
        patterns[grown] = seq_counts[item]
        sub = []
        for si, ti, _ in pointers:
            moved = _find_sequence_ext(sequences[si], si, ti, item)
            if moved is not None:
                sub.append(moved)
        _grow(grown, sub, sequences, delta, patterns)


def _find_sequence_ext(
    seq: RawSequence, si: int, after_txn: int, item: int
) -> Pointer | None:
    """Pointer to the first occurrence of *item* after transaction *after_txn*."""
    for ti in range(after_txn + 1, len(seq)):
        pi = _position(seq[ti], item)
        if pi is not None:
            return si, ti, pi
    return None


def _find_itemset_ext(
    sequences: list[RawSequence],
    pointer: Pointer,
    last_itemset: set[int],
    item: int,
) -> Pointer | None:
    """Pointer after an itemset extension by *item*.

    The leftmost host is the matched transaction itself when *item*
    appears after the matched position, else the first later transaction
    containing the whole augmented itemset.
    """
    si, ti, pi = pointer
    seq = sequences[si]
    matched = seq[ti]
    pos = _position(matched, item)
    if pos is not None and pos > pi:
        return si, ti, pos
    for tj in range(ti + 1, len(seq)):
        txn = seq[tj]
        if item in txn and last_itemset.issubset(txn):
            pos = _position(txn, item)
            assert pos is not None
            return si, tj, pos
    return None


def _position(txn: Transaction, item: int) -> int | None:
    """Index of *item* in a sorted transaction, or None."""
    lo, hi = 0, len(txn)
    while lo < hi:
        mid = (lo + hi) // 2
        if txn[mid] < item:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(txn) and txn[lo] == item:
        return lo
    return None
