"""PrefixSpan with physical projection (system S14; Pei et al., ICDE 2001).

The paper's main comparator.  PrefixSpan grows patterns depth-first; for
each frequent pattern it materialises the *projected database* — the
postfix of every supporting customer sequence after the leftmost match —
and counts the frequent extensions inside it.

A postfix is ``(partial, rest)``: the items remaining in the matched
transaction after the matched item (the ``(_, e, g)`` notation of
Table 2) plus the following transactions.  Because the projection is
taken at the leftmost match and keeps the entire remainder, itemset
extensions realised by *later* transactions are still found through the
"rest transaction contains the whole last itemset" rule, exactly as in
the original algorithm's ``(_x)`` matching.

This variant pays the projection cost the paper attributes to PrefixSpan:
every recursion level copies postfix tuples.  See
:mod:`repro.baselines.pseudo` for the pointer-based variant.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.counting import count_frequent_items
from repro.core.sequence import (
    RawSequence,
    Transaction,
    itemset_extension,
    sequence_extension,
)

#: A physically projected postfix: items left in the matched transaction,
#: then the remaining transactions.
Postfix = tuple[Transaction, RawSequence]


#: Operation counters of the most recent :func:`mine_prefixspan` run —
#: the projection cost Section 1.1 attributes to PrefixSpan, made
#: observable for the operation-count experiment.
last_run_stats: dict[str, int] = {"projections_built": 0, "postfixes_copied": 0}


def mine_prefixspan(
    members: Iterable[tuple[int, RawSequence]], delta: int
) -> dict[RawSequence, int]:
    """All frequent sequences with support >= *delta*, by PrefixSpan."""
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    last_run_stats["projections_built"] = 0
    last_run_stats["postfixes_copied"] = 0
    members = list(members)
    patterns: dict[RawSequence, int] = {}
    item_counts = count_frequent_items(members, delta)
    for item in sorted(item_counts):
        pattern: RawSequence = ((item,),)
        patterns[pattern] = item_counts[item]
        projected = [
            postfix
            for _, seq in members
            if (postfix := _project_sequence_ext(((), seq), item)) is not None
        ]
        last_run_stats["projections_built"] += 1
        last_run_stats["postfixes_copied"] += len(projected)
        _grow(pattern, projected, delta, patterns)
    return patterns


def _grow(
    pattern: RawSequence,
    projected: list[Postfix],
    delta: int,
    patterns: dict[RawSequence, int],
) -> None:
    """Count extensions in the projected database and recurse (depth-first)."""
    if len(projected) < delta:
        return
    last_itemset = set(pattern[-1])
    last_item = pattern[-1][-1]

    seq_counts: dict[int, int] = {}
    item_counts: dict[int, int] = {}
    for partial, rest in projected:
        seq_seen: set[int] = set()
        item_seen: set[int] = set(partial)
        for txn in rest:
            seq_seen.update(txn)
            if last_itemset.issubset(txn):
                item_seen.update(item for item in txn if item > last_item)
        for item in seq_seen:
            seq_counts[item] = seq_counts.get(item, 0) + 1
        for item in item_seen:
            item_counts[item] = item_counts.get(item, 0) + 1

    for item in sorted(item_counts):
        if item_counts[item] < delta:
            continue
        grown = itemset_extension(pattern, item)
        patterns[grown] = item_counts[item]
        sub = [
            postfix
            for entry in projected
            if (postfix := _project_itemset_ext(entry, last_itemset, item)) is not None
        ]
        last_run_stats["projections_built"] += 1
        last_run_stats["postfixes_copied"] += len(sub)
        _grow(grown, sub, delta, patterns)

    for item in sorted(seq_counts):
        if seq_counts[item] < delta:
            continue
        grown = sequence_extension(pattern, item)
        patterns[grown] = seq_counts[item]
        sub = [
            postfix
            for entry in projected
            if (postfix := _project_sequence_ext(entry, item)) is not None
        ]
        last_run_stats["projections_built"] += 1
        last_run_stats["postfixes_copied"] += len(sub)
        _grow(grown, sub, delta, patterns)


def _project_sequence_ext(entry: Postfix, item: int) -> Postfix | None:
    """Project a postfix on a sequence extension by *item*."""
    _, rest = entry
    for index, txn in enumerate(rest):
        pos = _position(txn, item)
        if pos is not None:
            return txn[pos + 1:], rest[index + 1:]
    return None


def _project_itemset_ext(
    entry: Postfix, last_itemset: set[int], item: int
) -> Postfix | None:
    """Project a postfix on an itemset extension by *item*.

    The new last itemset is ``last_itemset | {item}``; the leftmost host
    is either the partial transaction (which already contains
    *last_itemset* by construction) or a later transaction containing the
    whole augmented itemset.
    """
    partial, rest = entry
    pos = _position(partial, item)
    if pos is not None:
        return partial[pos + 1:], rest
    for index, txn in enumerate(rest):
        if item in txn and last_itemset.issubset(txn):
            pos = _position(txn, item)
            assert pos is not None
            return txn[pos + 1:], rest[index + 1:]
    return None


def _position(txn: Transaction, item: int) -> int | None:
    """Index of *item* in a sorted transaction, or None."""
    lo, hi = 0, len(txn)
    while lo < hi:
        mid = (lo + hi) // 2
        if txn[mid] < item:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(txn) and txn[lo] == item:
        return lo
    return None
