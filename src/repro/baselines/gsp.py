"""GSP (system S13; Srikant & Agrawal, EDBT 1996).

The classic bottom-up generate-and-test algorithm: candidate k-sequences
are joined from frequent (k-1)-sequences, pruned by the anti-monotone
property, and counted by scanning the database — the costs the paper's
Section 1.1 attributes to GSP.

Join rule (without time constraints): s1 joins s2 when dropping the first
item of s1 yields the same sequence as dropping the last item of s2; the
candidate is s1 extended by s2's last item (in s2's last transaction if
that item formed its own transaction, otherwise merged into s1's last
transaction).  For k = 2 every ordered item pair <(x)(y)> and every
unordered pair <(x y)> with x < y is a candidate.  The original hash-tree
counting index is replaced by a direct containment scan, which changes
constants but not the candidate-explosion behaviour being measured.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.counting import count_frequent_items
from repro.core.sequence import (
    RawSequence,
    all_k_subsequences,
    contains,
    flatten,
    itemset_extension,
    seq_length,
    sequence_extension,
)


#: Operation counters of the most recent :func:`mine_gsp` run — the
#: costs Section 1.1 attributes to GSP, made observable for the
#: operation-count experiment.  Read-only for callers.
last_run_stats: dict[str, int] = {"candidates_generated": 0, "candidates_counted": 0}


def mine_gsp(
    members: Iterable[tuple[int, RawSequence]], delta: int
) -> dict[RawSequence, int]:
    """All frequent sequences with support >= *delta*, by GSP."""
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    last_run_stats["candidates_generated"] = 0
    last_run_stats["candidates_counted"] = 0
    sequences = [seq for _, seq in members]
    item_counts = count_frequent_items(list(enumerate(sequences, 1)), delta)
    patterns: dict[RawSequence, int] = {
        ((item,),): count for item, count in item_counts.items()
    }
    current: set[RawSequence] = set(patterns)
    k = 2
    while current:
        candidates = _generate_candidates(current, k)
        last_run_stats["candidates_generated"] += len(candidates)
        candidates = _prune(candidates, current, k)
        last_run_stats["candidates_counted"] += len(candidates)
        survivors: set[RawSequence] = set()
        for candidate in candidates:
            count = sum(1 for seq in sequences if contains(seq, candidate))
            if count >= delta:
                patterns[candidate] = count
                survivors.add(candidate)
        current = survivors
        k += 1
    return patterns


def _generate_candidates(frequent: set[RawSequence], k: int) -> set[RawSequence]:
    """GSP join of frequent (k-1)-sequences into candidate k-sequences."""
    if k == 2:
        items = sorted(seq[0][0] for seq in frequent)
        pairs: set[RawSequence] = set()
        for x in items:
            for y in items:
                pairs.add(((x,), (y,)))
                if x < y:
                    pairs.add(((x, y),))
        return pairs
    by_tail: dict[RawSequence, list[RawSequence]] = {}
    for seq in frequent:
        by_tail.setdefault(_drop_last(seq), []).append(seq)
    candidates: set[RawSequence] = set()
    for s1 in frequent:
        for s2 in by_tail.get(_drop_first(s1), ()):
            candidates.add(_join(s1, s2))
    return candidates


def _drop_first(seq: RawSequence) -> RawSequence:
    """Remove the first item of the first transaction."""
    head = seq[0][1:]
    if head:
        return (head,) + seq[1:]
    return seq[1:]


def _drop_last(seq: RawSequence) -> RawSequence:
    """Remove the last item of the last transaction."""
    tail = seq[-1][:-1]
    if tail:
        return seq[:-1] + (tail,)
    return seq[:-1]


def _join(s1: RawSequence, s2: RawSequence) -> RawSequence:
    """Append s2's last item to s1, preserving s2's transaction shape."""
    last_item = s2[-1][-1]
    if len(s2[-1]) == 1:
        return sequence_extension(s1, last_item)
    return itemset_extension(s1, last_item)


def _prune(
    candidates: set[RawSequence], frequent: set[RawSequence], k: int
) -> set[RawSequence]:
    """Drop candidates with a non-frequent (k-1)-subsequence."""
    frequent_keys = {flatten(seq) for seq in frequent}
    kept: set[RawSequence] = set()
    for candidate in candidates:
        if seq_length(candidate) != k:
            continue
        subs = all_k_subsequences(candidate, k - 1)
        if all(flatten(sub) in frequent_keys for sub in subs):
            kept.add(candidate)
    return kept
