#!/usr/bin/env python
"""Graded chaos soak for the self-healing cluster (CI: soak-smoke).

Runs a timed, mixed-workload soak against a real coordinator plus
dynamically registered workers, while injecting the failures the
resilience layer exists for:

- workers start with ``--coordinator`` and self-register (no static
  ``--worker`` flags at all — the membership path carries everything),
- a SIGKILL schedule takes a worker down mid-traffic and restarts it,
  so lease expiry, breaker opening, shard retry and rejoin-with-a-fresh
  -breaker all happen against live jobs,
- membership fault injection (``worker.heartbeat`` probabilistic
  faults) runs the whole time,
- concurrent submitter threads keep mine, cache-hit and overload
  (429-probe) traffic flowing for the soak window.

Every observation is graded through
:mod:`repro.bench.soak_report` into one ``repro.soak-report`` JSON
document (``--report`` path), with hard invariants checked at the end:
every accepted job reached a terminal state, pattern sets are
byte-identical to a single-box reference, the event log validates, and
the coordinator holds no orphaned dispatch threads.  Exit status is 0
unless the verdict grades ``fail`` (degraded soaks pass CI: degradation
under injected chaos is the feature, not a bug).  Pure stdlib.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)
sys.path.insert(0, SRC_DIR)
# child repro processes must resolve the same tree, installed or not
os.environ["PYTHONPATH"] = os.pathsep.join(
    part for part in (SRC_DIR, os.environ.get("PYTHONPATH")) if part
)

from repro.bench.soak_report import build_report, render_report  # noqa: E402
from repro.obs.events import read_events, validate_event  # noqa: E402

#: min supports with precomputed single-box references (mine/cache
#: traffic); high enough that result sets stay small and jobs fast,
#: so the soak window fits many rounds
CANONICAL_SUPPORTS = (9, 11, 13, 15)
BASE_PORT = int(os.environ.get("SOAK_BASE_PORT", "8951"))


def request(port: int, path: str, payload: dict | None = None,
            timeout: float = 10.0):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            return exc.code, json.loads(body)
        finally:
            exc.close()


def start_process(argv: list[str], port: int, name: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    for _ in range(300):
        if proc.poll() is not None:
            sys.exit(f"{name} died on startup:\n{proc.stdout.read()}")
        try:
            request(port, "/healthz", timeout=2.0)
            return proc
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    proc.kill()
    sys.exit(f"{name} never answered /healthz")


def start_worker(port: int, coordinator_port: int) -> subprocess.Popen:
    return start_process(
        [sys.executable, "-m", "repro.cli", "serve",
         "--role", "worker", "--port", str(port),
         "--coordinator", f"http://127.0.0.1:{coordinator_port}"],
        port, f"worker :{port}",
    )


def poll_job(port: int, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, doc = request(port, f"/jobs/{job_id}")
        if doc.get("status") in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.1)
    return {"status": "timeout", "id": job_id}


def load_reference(workdir: str, db_path: str, support: int) -> dict[str, int]:
    """Single-box ``disc-all`` pattern map, rendered like the service."""
    ref_path = os.path.join(workdir, f"ref-{support}.json")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "mine", db_path,
         "--min-support", str(support), "--save", ref_path],
        check=True, stdout=subprocess.DEVNULL,
    )
    from repro.core.sequence import format_seq

    with open(ref_path, encoding="utf-8") as handle:
        return {
            format_seq(tuple(tuple(elem) for elem in pattern)): count
            for pattern, count in json.load(handle)["patterns"]
        }


class Soak:
    """Shared state of one soak run (thread-safe outcome collection)."""

    def __init__(self, coordinator_port: int,
                 references: dict[int, dict[str, int]]) -> None:
        self.port = coordinator_port
        self.references = references
        self.outcomes: list[dict] = []
        self.kills: list[dict] = []
        self._lock = threading.Lock()
        self._reject_serial = 0

    def record(self, outcome: dict) -> None:
        with self._lock:
            self.outcomes.append(outcome)

    def next_reject_support(self) -> float:
        with self._lock:
            self._reject_serial += 1
            # fractional supports are unique per probe, so overload
            # bursts can never be absorbed by the result cache
            return 0.010 + 0.0005 * self._reject_serial

    def run_job(self, kind: str, min_support: float) -> None:
        """Submit one job and grade its life to a terminal outcome."""
        started = time.time()
        try:
            status, doc = request(
                self.port, "/mine",
                {"database": "soak", "min_support": min_support},
                timeout=30.0,
            )
        except (urllib.error.URLError, OSError) as exc:
            self.record({"kind": kind, "status": "unreachable", "error": str(exc)})
            return
        if status == 429:
            self.record({"kind": kind, "status": "rejected"})
            return
        if status not in (200, 202):
            self.record({
                "kind": kind, "status": f"http_{status}",
                "error": json.dumps(doc)[:200],
            })
            return
        job = poll_job(self.port, doc["job_id"])
        outcome = {
            "kind": kind,
            "job_id": doc.get("job_id"),
            "status": job.get("status"),
            "cached": bool(doc.get("cached")),
            "seconds": round(time.time() - started, 3),
        }
        if job.get("status") == "failed":
            outcome["error"] = str(job.get("error"))[:200]
        reference = self.references.get(min_support)
        if reference is not None and job.get("status") == "done":
            mined = {
                entry["pattern"]: entry["support"]
                for entry in job.get("result", {}).get("patterns", [])
            }
            outcome["matched"] = mined == reference
        self.record(outcome)


def submitter(soak: Soak, deadline: float, kind: str, pause: float) -> None:
    """One traffic thread: canonical mines (and their cache hits)."""
    first_round = True
    while time.time() < deadline:
        for support in CANONICAL_SUPPORTS:
            if time.time() >= deadline:
                return
            # the first pass seeds the cache (kind mine); later passes
            # of the same supports are expected cache hits
            soak.run_job("mine" if first_round else kind, support)
            time.sleep(pause)
        first_round = False


def overload_burst(soak: Soak, size: int) -> None:
    """Fire *size* unique jobs as fast as possible to probe backpressure."""
    threads = [
        threading.Thread(
            target=soak.run_job, args=("reject", soak.next_reject_support()),
            daemon=True,
        )
        for _ in range(size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180.0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=30.0,
                        help="soak window in seconds (default 30)")
    parser.add_argument("--workers", type=int, default=2,
                        help="dynamically registered workers (default 2)")
    parser.add_argument("--kills", type=int, default=1,
                        help="SIGKILL + restart cycles (default 1)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the repro.soak-report JSON here")
    parser.add_argument("--burst", type=int, default=8,
                        help="overload-probe burst size (default 8)")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="soak-")
    db_path = os.path.join(workdir, "soak.spmf")
    events_path = os.path.join(workdir, "events.jsonl")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate",
         "--ncust", "300", "--slen", "7", "--tlen", "3",
         "--nitems", "50", "--seed", "11", "-o", db_path],
        check=True, stdout=subprocess.DEVNULL,
    )
    references = {
        support: load_reference(workdir, db_path, support)
        for support in CANONICAL_SUPPORTS
    }
    print(f"references ready: {[len(r) for r in references.values()]} patterns")

    coordinator_port = BASE_PORT
    worker_ports = [BASE_PORT + 1 + i for i in range(args.workers)]
    coordinator = start_process(
        [sys.executable, "-m", "repro.cli", "serve", db_path,
         "--role", "coordinator", "--port", str(coordinator_port),
         "--workers", "1", "--queue-size", "4",
         "--lease-seconds", "2", "--degrade-after", "2",
         "--events", events_path,
         "--faults", "worker.heartbeat:p0.05", "--faults-seed", "7"],
        coordinator_port, "coordinator",
    )
    workers = {
        port: start_worker(port, coordinator_port) for port in worker_ports
    }
    try:
        # wait until every worker's self-registration landed
        deadline = time.time() + 30
        while time.time() < deadline:
            _, table = request(coordinator_port, "/workers")
            if table["counts"]["live"] >= args.workers:
                break
            time.sleep(0.1)
        else:
            sys.exit(f"workers never all registered: {table}")
        print(f"{args.workers} workers self-registered; soaking "
              f"{args.duration:g}s with {args.kills} kill(s)")

        soak = Soak(coordinator_port, references)
        soak_deadline = time.time() + args.duration
        traffic = [
            threading.Thread(
                target=submitter, args=(soak, soak_deadline, "cache", 0.2),
                daemon=True,
            ),
            threading.Thread(
                target=submitter, args=(soak, soak_deadline, "mine", 0.5),
                daemon=True,
            ),
        ]
        for thread in traffic:
            thread.start()

        # kill schedule: spread evenly through the window, restart after
        # a few seconds so the rejoin happens while traffic still flows
        victim_port = worker_ports[-1]
        victim_url = f"http://127.0.0.1:{victim_port}"
        for cycle in range(args.kills):
            time.sleep(max(1.0, args.duration / (args.kills + 1) - 4.0))
            if time.time() >= soak_deadline:
                break
            workers[victim_port].send_signal(signal.SIGKILL)
            workers[victim_port].wait()
            soak.kills.append({"worker": victim_url, "ts": time.time()})
            print(f"SIGKILLed {victim_url} (cycle {cycle + 1})")
            time.sleep(4.0)
            workers[victim_port] = start_worker(victim_port, coordinator_port)
            print(f"restarted {victim_url}; waiting for its rejoin")

        overload_burst(soak, args.burst)
        for thread in traffic:
            thread.join(timeout=300.0)
        print(f"soak window over: {len(soak.outcomes)} graded items")

        # -- hard invariants ------------------------------------------------
        statuses = [outcome.get("status") for outcome in soak.outcomes]
        every_job_finished = all(
            status in ("done", "rejected") for status in statuses
        )
        byte_identical = all(
            outcome.get("matched") is not False for outcome in soak.outcomes
        )
        events = read_events(events_path)
        log_valid = not any(validate_event(record) for record in events)
        dispatch_threads = None
        for _ in range(50):  # settle: in-flight RPCs may take a moment
            _, health = request(coordinator_port, "/healthz")
            dispatch_threads = health.get("dispatch_threads")
            if dispatch_threads == 0:
                break
            time.sleep(0.2)
        invariants = {
            "every_accepted_job_finished": every_job_finished,
            "results_byte_identical": byte_identical,
            "event_log_validates": log_valid,
            "no_orphaned_dispatch_threads": dispatch_threads == 0,
        }

        report = build_report(
            soak.outcomes, invariants, events=events, kills=soak.kills,
            meta={
                "duration_seconds": args.duration,
                "workers": args.workers,
                "kills": args.kills,
                "statuses": sorted(set(str(s) for s in statuses)),
            },
        )
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"report written to {args.report}")
        print(render_report(report))
        return 1 if report["verdict"] == "fail" else 0
    finally:
        for proc in [coordinator] + list(workers.values()):
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in [coordinator] + list(workers.values()):
            if proc.poll() is None:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
