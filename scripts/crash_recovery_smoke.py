#!/usr/bin/env python
"""Crash-recovery smoke test for ``repro serve`` (CI: crash-recovery-smoke).

End-to-end proof that the fault-tolerance stack holds together across a
real process death:

1. start ``repro serve`` with a job journal,
2. submit a mine that takes long enough to cross checkpoint boundaries,
3. ``SIGKILL`` the server after the first checkpoint record hits the
   journal (no drain, no atexit — the hard crash),
4. restart the server over the same journal,
5. assert the interrupted job is resumed under its original id and its
   final pattern set is byte-identical to an uninterrupted run,
6. assert the submitted ``traceparent`` trace id survived the crash —
   on the job payload, in every journal record of the job, and in the
   structured event log — and that journal-replay health shows up on
   ``/metrics``.

Exits non-zero (with the server log) on any deviation.  Pure stdlib.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

MIN_SUPPORT = 5
PORT = int(os.environ.get("SMOKE_PORT", "8931"))

#: the W3C traceparent example ids — any fixed valid pair works
TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"
TRACEPARENT = f"00-{TRACE_ID}-00f067aa0ba902b7-01"


def request(path: str, payload: dict | None = None,
            headers: dict | None = None) -> dict:
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{PORT}{path}", data=data,
        headers=headers or {},
    )
    with urllib.request.urlopen(req, timeout=10) as response:
        return json.loads(response.read())


def request_text(path: str, headers: dict | None = None) -> str:
    req = urllib.request.Request(
        f"http://127.0.0.1:{PORT}{path}", headers=headers or {}
    )
    with urllib.request.urlopen(req, timeout=10) as response:
        return response.read().decode("utf-8")


def start_server(db_path: str, journal_path: str,
                 events_path: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", db_path,
         "--port", str(PORT), "--workers", "1", "--journal", journal_path,
         "--events", events_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    for _ in range(150):
        if proc.poll() is not None:
            sys.exit(f"server died on startup:\n{proc.stdout.read()}")
        try:
            request("/healthz")
            return proc
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    proc.kill()
    sys.exit("server never answered /healthz")


def journal_has_checkpoint(journal_path: str) -> bool:
    if not os.path.exists(journal_path):
        return False
    with open(journal_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final line mid-crash is expected
            if record.get("event") == "checkpoint":
                return True
    return False


def decoded_lines(path: str) -> list[dict]:
    if not os.path.exists(path):
        return []
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # torn final line mid-crash is expected
    return records


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="crash-smoke-")
    db_path = os.path.join(workdir, "demo.spmf")
    journal_path = os.path.join(workdir, "jobs.jsonl")
    events_path = os.path.join(workdir, "events.jsonl")

    subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate",
         "--ncust", "300", "--slen", "7", "--tlen", "3",
         "--nitems", "50", "--seed", "11", "-o", db_path],
        check=True, stdout=subprocess.DEVNULL,
    )

    # Uninterrupted reference run, via the same library the service uses.
    ref_path = os.path.join(workdir, "ref.json")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "mine", db_path,
         "--min-support", str(MIN_SUPPORT), "--save", ref_path],
        check=True, stdout=subprocess.DEVNULL,
    )
    with open(ref_path, encoding="utf-8") as handle:
        reference = {
            tuple(tuple(elem) for elem in pattern): support
            for pattern, support in json.load(handle)["patterns"]
        }
    print(f"reference run: {len(reference)} patterns")

    server = start_server(db_path, journal_path, events_path)
    submitted = request(
        "/mine", {"database": "demo", "min_support": MIN_SUPPORT},
        headers={"traceparent": TRACEPARENT},
    )
    job_id = submitted["job_id"]
    if submitted.get("trace_id") != TRACE_ID:
        server.kill()
        sys.exit(
            f"submit response trace_id {submitted.get('trace_id')!r} "
            f"!= sent {TRACE_ID!r}"
        )
    print(f"submitted {job_id} under trace {TRACE_ID}")

    deadline = time.time() + 60
    while time.time() < deadline:
        if journal_has_checkpoint(journal_path):
            break
        time.sleep(0.02)
    else:
        server.kill()
        sys.exit("no checkpoint record appeared within 60s")

    server.send_signal(signal.SIGKILL)
    server.wait()
    print("SIGKILLed the server after the first journaled checkpoint")

    server = start_server(db_path, journal_path, events_path)
    try:
        deadline = time.time() + 240
        while time.time() < deadline:
            doc = request(f"/jobs/{job_id}")
            if doc["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.3)
        else:
            sys.exit(f"recovered job still {doc['status']} after 240s")

        if doc["status"] != "done":
            sys.exit(f"recovered job ended {doc['status']}: {doc.get('error')}")
        result = doc["result"]
        if not result["complete"]:
            sys.exit("recovered result is flagged incomplete")

        # Compare supports through the same raw-tuple keys as the
        # reference file: parse "<(a, b)(c)>" back via the repro parser.
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
        from repro.core.sequence import format_seq

        rendered_reference = {
            format_seq(raw): support for raw, support in reference.items()
        }
        recovered = {
            entry["pattern"]: entry["support"]
            for entry in result["patterns"]
        }
        if recovered != rendered_reference:
            sys.exit(
                f"pattern sets differ: recovered {len(recovered)} vs "
                f"reference {len(rendered_reference)}"
            )
        print(
            f"recovered job {job_id}: done, complete, "
            f"{len(recovered)} patterns == uninterrupted run"
        )

        # --- trace propagation: one id across crash and recovery ---
        if doc.get("trace_id") != TRACE_ID:
            sys.exit(
                f"recovered job trace_id {doc.get('trace_id')!r} "
                f"!= submitted {TRACE_ID!r}"
            )
        if "queue_wait_seconds" not in doc or "run_seconds" not in doc:
            sys.exit("job payload lost queue_wait_seconds/run_seconds")
        job_records = [
            record for record in decoded_lines(journal_path)
            if record.get("job") == job_id or record.get("job_id") == job_id
        ]
        bad = [
            record for record in job_records
            if record.get("trace_id") not in (TRACE_ID, None)
        ]
        if bad or not any(
            record.get("trace_id") == TRACE_ID for record in job_records
        ):
            sys.exit(f"journal records lost the trace id: {job_records}")

        from repro.obs.events import validate_event

        events = decoded_lines(events_path)
        invalid = [
            (record, problems)
            for record in events
            if (problems := validate_event(record))
        ]
        if invalid:
            sys.exit(f"invalid event records: {invalid[:3]}")
        names = [
            record["event"] for record in events
            if record.get("trace_id") == TRACE_ID
        ]
        for wanted in ("job.accepted", "job.checkpoint", "job.recovered",
                       "job.finished"):
            if wanted not in names:
                sys.exit(f"event {wanted!r} missing for trace {TRACE_ID}: {names}")
        print(f"event log replays the lifecycle: {len(events)} records")

        # --- journal replay health is visible on /metrics ---
        metrics = request("/metrics")["metrics"]
        resumed = metrics.get("service.journal_resumed", {}).get("value")
        if resumed != 1:
            sys.exit(f"service.journal_resumed is {resumed!r}, wanted 1")
        prometheus = request_text("/metrics?format=prometheus")
        if "service_journal_resumed 1" not in prometheus:
            sys.exit("prometheus rendering lost service_journal_resumed")
        print("journal health on /metrics: service.journal_resumed == 1")
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
    print("crash-recovery smoke PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
