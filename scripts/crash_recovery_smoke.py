#!/usr/bin/env python
"""Crash-recovery smoke test for ``repro serve`` (CI: crash-recovery-smoke).

End-to-end proof that the fault-tolerance stack holds together across a
real process death:

1. start ``repro serve`` with a job journal,
2. submit a mine that takes long enough to cross checkpoint boundaries,
3. ``SIGKILL`` the server after the first checkpoint record hits the
   journal (no drain, no atexit — the hard crash),
4. restart the server over the same journal,
5. assert the interrupted job is resumed under its original id and its
   final pattern set is byte-identical to an uninterrupted run.

Exits non-zero (with the server log) on any deviation.  Pure stdlib.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

MIN_SUPPORT = 5
PORT = int(os.environ.get("SMOKE_PORT", "8931"))


def request(path: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    with urllib.request.urlopen(
        f"http://127.0.0.1:{PORT}{path}", data=data, timeout=10
    ) as response:
        return json.loads(response.read())


def start_server(db_path: str, journal_path: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", db_path,
         "--port", str(PORT), "--workers", "1", "--journal", journal_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    for _ in range(150):
        if proc.poll() is not None:
            sys.exit(f"server died on startup:\n{proc.stdout.read()}")
        try:
            request("/healthz")
            return proc
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    proc.kill()
    sys.exit("server never answered /healthz")


def journal_has_checkpoint(journal_path: str) -> bool:
    if not os.path.exists(journal_path):
        return False
    with open(journal_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final line mid-crash is expected
            if record.get("event") == "checkpoint":
                return True
    return False


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="crash-smoke-")
    db_path = os.path.join(workdir, "demo.spmf")
    journal_path = os.path.join(workdir, "jobs.jsonl")

    subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate",
         "--ncust", "300", "--slen", "7", "--tlen", "3",
         "--nitems", "50", "--seed", "11", "-o", db_path],
        check=True, stdout=subprocess.DEVNULL,
    )

    # Uninterrupted reference run, via the same library the service uses.
    ref_path = os.path.join(workdir, "ref.json")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "mine", db_path,
         "--min-support", str(MIN_SUPPORT), "--save", ref_path],
        check=True, stdout=subprocess.DEVNULL,
    )
    with open(ref_path, encoding="utf-8") as handle:
        reference = {
            tuple(tuple(elem) for elem in pattern): support
            for pattern, support in json.load(handle)["patterns"]
        }
    print(f"reference run: {len(reference)} patterns")

    server = start_server(db_path, journal_path)
    job_id = request(
        "/mine", {"database": "demo", "min_support": MIN_SUPPORT}
    )["job_id"]
    print(f"submitted {job_id}")

    deadline = time.time() + 60
    while time.time() < deadline:
        if journal_has_checkpoint(journal_path):
            break
        time.sleep(0.02)
    else:
        server.kill()
        sys.exit("no checkpoint record appeared within 60s")

    server.send_signal(signal.SIGKILL)
    server.wait()
    print("SIGKILLed the server after the first journaled checkpoint")

    server = start_server(db_path, journal_path)
    try:
        deadline = time.time() + 240
        while time.time() < deadline:
            doc = request(f"/jobs/{job_id}")
            if doc["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.3)
        else:
            sys.exit(f"recovered job still {doc['status']} after 240s")

        if doc["status"] != "done":
            sys.exit(f"recovered job ended {doc['status']}: {doc.get('error')}")
        result = doc["result"]
        if not result["complete"]:
            sys.exit("recovered result is flagged incomplete")

        # Compare supports through the same raw-tuple keys as the
        # reference file: parse "<(a, b)(c)>" back via the repro parser.
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
        from repro.core.sequence import format_seq

        rendered_reference = {
            format_seq(raw): support for raw, support in reference.items()
        }
        recovered = {
            entry["pattern"]: entry["support"]
            for entry in result["patterns"]
        }
        if recovered != rendered_reference:
            sys.exit(
                f"pattern sets differ: recovered {len(recovered)} vs "
                f"reference {len(rendered_reference)}"
            )
        print(
            f"recovered job {job_id}: done, complete, "
            f"{len(recovered)} patterns == uninterrupted run"
        )
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
    print("crash-recovery smoke PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
