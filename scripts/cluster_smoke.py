#!/usr/bin/env python
"""Cluster smoke test for ``repro serve`` roles (CI: cluster-smoke).

End-to-end proof that the sharded coordinator/worker path survives a
worker death:

1. start two ``--role worker`` servers and one ``--role coordinator``
   pointed at both,
2. submit a mine (the coordinator defaults to ``disc-all-cluster``),
3. ``SIGKILL`` one worker as soon as the event log shows a shard
   dispatched to it — the hard mid-job death,
4. assert the job still finishes and its pattern set is byte-identical
   to an uninterrupted single-box ``disc-all`` run,
5. assert the shard retry is visible end to end: ``shard.retried``
   events under the submitted trace id, ``cluster.shards_retried`` on
   the coordinator's ``/metrics`` (JSON and Prometheus), and the dead
   worker missing from ``/healthz`` live counts.

Exits non-zero (with the server logs) on any deviation.  Pure stdlib.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

MIN_SUPPORT = 5
COORDINATOR_PORT = int(os.environ.get("SMOKE_CLUSTER_PORT", "8941"))
WORKER_PORTS = (COORDINATOR_PORT + 1, COORDINATOR_PORT + 2)

#: the W3C traceparent example ids — any fixed valid pair works
TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"
TRACEPARENT = f"00-{TRACE_ID}-00f067aa0ba902b7-01"


def request(port: int, path: str, payload: dict | None = None,
            headers: dict | None = None) -> dict:
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, headers=headers or {},
    )
    with urllib.request.urlopen(req, timeout=10) as response:
        return json.loads(response.read())


def request_text(port: int, path: str) -> str:
    req = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    with urllib.request.urlopen(req, timeout=10) as response:
        return response.read().decode("utf-8")


def start_process(argv: list[str], port: int, name: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    for _ in range(150):
        if proc.poll() is not None:
            sys.exit(f"{name} died on startup:\n{proc.stdout.read()}")
        try:
            request(port, "/healthz")
            return proc
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    proc.kill()
    sys.exit(f"{name} never answered /healthz")


def start_worker(port: int) -> subprocess.Popen:
    return start_process(
        [sys.executable, "-m", "repro.cli", "serve",
         "--role", "worker", "--port", str(port)],
        port, f"worker :{port}",
    )


def decoded_lines(path: str) -> list[dict]:
    if not os.path.exists(path):
        return []
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # torn final line mid-kill is tolerated
    return records


def dispatched_workers(events_path: str) -> set[str]:
    return {
        record.get("worker", "")
        for record in decoded_lines(events_path)
        if record.get("event") == "shard.dispatched"
    }


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="cluster-smoke-")
    db_path = os.path.join(workdir, "demo.spmf")
    events_path = os.path.join(workdir, "events.jsonl")

    subprocess.run(
        [sys.executable, "-m", "repro.cli", "generate",
         "--ncust", "300", "--slen", "7", "--tlen", "3",
         "--nitems", "50", "--seed", "11", "-o", db_path],
        check=True, stdout=subprocess.DEVNULL,
    )

    # Uninterrupted single-box reference, via the same library.
    ref_path = os.path.join(workdir, "ref.json")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "mine", db_path,
         "--min-support", str(MIN_SUPPORT), "--save", ref_path],
        check=True, stdout=subprocess.DEVNULL,
    )
    with open(ref_path, encoding="utf-8") as handle:
        reference = {
            tuple(tuple(elem) for elem in pattern): support
            for pattern, support in json.load(handle)["patterns"]
        }
    print(f"single-box reference run: {len(reference)} patterns")

    workers = {port: start_worker(port) for port in WORKER_PORTS}
    worker_urls = [f"http://127.0.0.1:{port}" for port in WORKER_PORTS]
    print(f"workers up on {', '.join(worker_urls)}")

    coordinator = start_process(
        [sys.executable, "-m", "repro.cli", "serve", db_path,
         "--role", "coordinator", "--port", str(COORDINATOR_PORT),
         "--workers", "1", "--events", events_path]
        + [arg for url in worker_urls for arg in ("--worker", url)],
        COORDINATOR_PORT, "coordinator",
    )
    victim_port = WORKER_PORTS[1]
    victim_url = f"http://127.0.0.1:{victim_port}"
    try:
        health = request(COORDINATOR_PORT, "/healthz")
        if health.get("role") != "coordinator":
            sys.exit(f"coordinator /healthz role is {health.get('role')!r}")
        if health.get("workers_connected") != 2 or health.get("workers_live") != 2:
            sys.exit(f"unexpected worker counts before the job: {health}")
        print("coordinator /healthz: role=coordinator, 2/2 workers live")

        submitted = request(
            COORDINATOR_PORT, "/mine",
            {"database": "demo", "min_support": MIN_SUPPORT},
            headers={"traceparent": TRACEPARENT},
        )
        job_id = submitted["job_id"]
        if submitted.get("algorithm") not in (None, "disc-all-cluster"):
            sys.exit(f"coordinator did not default to the cluster miner: {submitted}")
        print(f"submitted {job_id} under trace {TRACE_ID}")

        # Kill one worker the moment a shard lands on it: the shards it
        # holds (and every one it would have taken) must be re-dispatched.
        deadline = time.time() + 60
        while time.time() < deadline:
            if victim_url in dispatched_workers(events_path):
                break
            time.sleep(0.005)
        else:
            sys.exit("no shard was dispatched to the victim worker within 60s")
        workers[victim_port].send_signal(signal.SIGKILL)
        workers[victim_port].wait()
        print(f"SIGKILLed worker {victim_url} after its first dispatched shard")

        deadline = time.time() + 240
        while time.time() < deadline:
            doc = request(COORDINATOR_PORT, f"/jobs/{job_id}")
            if doc["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.2)
        else:
            sys.exit(f"job still {doc['status']} after 240s")
        if doc["status"] != "done":
            sys.exit(f"job ended {doc['status']}: {doc.get('error')}")
        result = doc["result"]
        if not result["complete"]:
            sys.exit("clustered result is flagged incomplete")

        # Compare supports through the repro renderer, like the reference.
        sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
        from repro.core.sequence import format_seq

        rendered_reference = {
            format_seq(raw): support for raw, support in reference.items()
        }
        clustered = {
            entry["pattern"]: entry["support"] for entry in result["patterns"]
        }
        if clustered != rendered_reference:
            sys.exit(
                f"pattern sets differ: clustered {len(clustered)} vs "
                f"reference {len(rendered_reference)}"
            )
        if doc.get("trace_id") != TRACE_ID:
            sys.exit(f"job trace_id {doc.get('trace_id')!r} != {TRACE_ID!r}")
        print(
            f"job {job_id}: done, complete, {len(clustered)} patterns "
            "== single-box run despite the worker death"
        )

        # --- the retry is narrated under the submitted trace id ---
        from repro.obs.events import validate_event

        events = decoded_lines(events_path)
        invalid = [
            (record, problems)
            for record in events
            if (problems := validate_event(record))
        ]
        if invalid:
            sys.exit(f"invalid event records: {invalid[:3]}")
        names = [
            record["event"] for record in events
            if record.get("trace_id") == TRACE_ID
        ]
        for wanted in ("job.accepted", "shard.dispatched", "shard.retried",
                       "shard.completed", "job.finished"):
            if wanted not in names:
                sys.exit(f"event {wanted!r} missing for trace {TRACE_ID}: "
                         f"{sorted(set(names))}")
        retried_events = [
            record for record in events
            if record.get("event") == "shard.retried"
            and record.get("worker") == victim_url
        ]
        if not retried_events:
            sys.exit("no shard.retried event names the killed worker")
        print(
            f"event log narrates the retry: {len(retried_events)} "
            f"shard.retried record(s) for {victim_url}, one trace id"
        )

        # --- retry counters and live-worker counts on the coordinator ---
        metrics = request(COORDINATOR_PORT, "/metrics")["metrics"]
        retried = metrics.get("cluster.shards_retried", {}).get("value", 0)
        if not retried:
            sys.exit(f"cluster.shards_retried is {retried!r}, wanted >= 1")
        merged = metrics.get("cluster.shards_merged", {}).get("value", 0)
        if not merged:
            sys.exit("cluster.shards_merged missing from /metrics")
        prometheus = request_text(
            COORDINATOR_PORT, "/metrics?format=prometheus"
        )
        if "cluster_shards_retried" not in prometheus:
            sys.exit("prometheus rendering lost cluster_shards_retried")
        health = request(COORDINATOR_PORT, "/healthz")
        if health.get("workers_connected") != 2 or health.get("workers_live") != 1:
            sys.exit(f"post-kill worker counts wrong: {health}")
        print(
            f"coordinator /metrics: {retried} retried, {merged} merged; "
            "/healthz: 1/2 workers live"
        )
    finally:
        for proc in [coordinator] + list(workers.values()):
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in [coordinator] + list(workers.values()):
            if proc.poll() is None:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
    print("cluster smoke PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
