"""Figure 9: processing time vs minimum support threshold.

Paper shape: DISC-all spends the least time across the delta sweep on
the dense database of [8].
"""

from __future__ import annotations

import pytest

from repro.mining.api import mine

ALGORITHMS = ("disc-all", "prefixspan", "pseudo")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("minsup_index", [0, 1], ids=["high", "low"])
def test_fig9_runtime(benchmark, fig9_db, smoke, algorithm, minsup_index):
    minsup = smoke.fig9_minsups[minsup_index]
    benchmark.group = f"fig9 minsup={minsup}"
    result = benchmark(mine, fig9_db, minsup, algorithm=algorithm)
    assert len(result) > 0
