"""Head-to-head benchmark of every registered miner on one workload.

The paper's Table 5 catalogues the strategies each algorithm uses; this
bench puts all of them on the same database so the strategy differences
show up as wall-clock (brute force excluded — it exists as an oracle,
not a contender).
"""

from __future__ import annotations

import pytest

from repro.mining.api import mine

ALGORITHMS = (
    "disc-all",
    "disc-all-plain",
    "dynamic-disc-all",
    "multilevel-disc-all",
    "prefixspan",
    "pseudo",
    "gsp",
    "spade",
    "spam",
)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_algorithm_head_to_head(benchmark, fig9_db, smoke, algorithm):
    minsup = smoke.fig9_minsups[0]
    benchmark.group = "all algorithms, fig9 smoke database"
    result = benchmark(mine, fig9_db, minsup, algorithm=algorithm)
    assert len(result) > 0
