"""Table 14: average NRR per level under different thetas."""

from __future__ import annotations

import pytest

from repro.core.nrr import compute_nrr_profile
from repro.mining.api import mine


@pytest.mark.parametrize("theta_index", [0, 1], ids=["low-theta", "high-theta"])
def test_table14_profile(benchmark, theta_dbs, smoke, theta_index):
    theta = smoke.theta_values[theta_index]
    db = theta_dbs[theta]
    benchmark.group = "table14"

    def regenerate():
        result = mine(db, smoke.theta_minsup, algorithm="disc-all")
        return compute_nrr_profile(result.patterns, len(db)).averages()

    profile = benchmark(regenerate)
    assert profile[0] < 0.5
