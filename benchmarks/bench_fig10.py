"""Figure 10: processing time vs theta (avg transactions per customer).

Paper shape: Dynamic DISC-all best as theta grows; static DISC-all loses
to Pseudo at the largest theta.
"""

from __future__ import annotations

import pytest

from repro.mining.api import mine

ALGORITHMS = ("dynamic-disc-all", "disc-all", "prefixspan", "pseudo")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("theta_index", [0, 1], ids=["low-theta", "high-theta"])
def test_fig10_runtime(benchmark, theta_dbs, smoke, algorithm, theta_index):
    theta = smoke.theta_values[theta_index]
    benchmark.group = f"fig10 theta={theta}"
    result = benchmark(mine, theta_dbs[theta], smoke.theta_minsup, algorithm=algorithm)
    assert len(result) > 0
