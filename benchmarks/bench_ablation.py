"""Ablation benchmarks (ours): the cost of each DISC-all design choice.

* bi-level vs plain per-k discovery (Section 3.2's virtual partitions);
* customer sequence reducing on/off (strategy 3 of Table 5);
* array-backed key table vs the paper's locative AVL tree;
* Dynamic DISC-all across gamma.
"""

from __future__ import annotations

import pytest

from repro.mining.api import mine

VARIANTS = {
    "bilevel": ("disc-all", {}),
    "plain": ("disc-all", {"bilevel": False}),
    "no-reduce": ("disc-all", {"reduce": False}),
    "avl-backend": ("disc-all", {"backend": "avl"}),
    "dynamic-0.5": ("dynamic-disc-all", {}),
    "dynamic-1.0": ("dynamic-disc-all", {"gamma": 1.0}),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_ablation(benchmark, fig9_db, smoke, variant):
    algorithm, options = VARIANTS[variant]
    minsup = smoke.fig9_minsups[-1]
    benchmark.group = "ablation"
    result = benchmark(mine, fig9_db, minsup, algorithm=algorithm, **options)
    assert len(result) > 0
