"""Figure 8: processing time vs database size (Ncust sweep).

Paper shape: DISC-all fastest of the three, the gap widening as the
number of customer sequences grows.
"""

from __future__ import annotations

import pytest

from repro.mining.api import mine

ALGORITHMS = ("disc-all", "prefixspan", "pseudo")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("ncust_index", [0, 1], ids=["small", "large"])
def test_fig8_runtime(benchmark, fig8_dbs, smoke, algorithm, ncust_index):
    ncust = smoke.fig8_ncust[ncust_index]
    db = fig8_dbs[ncust]
    benchmark.group = f"fig8 ncust={ncust}"
    result = benchmark(mine, db, smoke.fig8_minsup, algorithm=algorithm)
    assert len(result) > 0
