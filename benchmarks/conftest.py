"""Shared fixtures for the benchmark suite.

The benchmarks exercise the same drivers as ``repro.bench.experiments``
at the ``smoke`` scale so that ``pytest benchmarks/ --benchmark-only``
finishes in minutes; run ``python -m repro experiment <name> --scale
repro`` for the full-size rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SCALES
from repro.bench import experiments as exp


@pytest.fixture(scope="session")
def smoke():
    return SCALES["smoke"]


@pytest.fixture(scope="session")
def fig9_db(smoke):
    return exp._fig9_db(smoke)


@pytest.fixture(scope="session")
def fig8_dbs(smoke):
    return {ncust: exp._fig8_db(smoke, ncust) for ncust in smoke.fig8_ncust}


@pytest.fixture(scope="session")
def theta_dbs(smoke):
    return {theta: exp._theta_db(smoke, theta) for theta in smoke.theta_values}
