"""Table 13: the processing-time ratio of Pseudo to DISC-all.

The benchmark times both sides at one threshold; the full ratio sweep is
``python -m repro experiment table13``.
"""

from __future__ import annotations

import pytest

from repro.mining.api import mine


@pytest.mark.parametrize("algorithm", ["pseudo", "disc-all"])
def test_table13_sides(benchmark, fig9_db, smoke, algorithm):
    minsup = smoke.fig9_minsups[-1]
    benchmark.group = f"table13 minsup={minsup}"
    result = benchmark(mine, fig9_db, minsup, algorithm=algorithm)
    assert len(result) > 0
