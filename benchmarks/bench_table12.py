"""Table 12: average NRR per partition level under different deltas.

The benchmark measures the full pipeline that regenerates the table:
mining the dense database and computing the per-level NRR profile.
"""

from __future__ import annotations

import pytest

from repro.core.nrr import compute_nrr_profile
from repro.mining.api import mine


@pytest.mark.parametrize("minsup_index", [0, 1], ids=["high", "low"])
def test_table12_profile(benchmark, fig9_db, smoke, minsup_index):
    minsup = smoke.fig9_minsups[minsup_index]
    benchmark.group = "table12"

    def regenerate():
        result = mine(fig9_db, minsup, algorithm="disc-all")
        return compute_nrr_profile(result.patterns, len(fig9_db)).averages()

    profile = benchmark(regenerate)
    # Shape assertions from §4.2: tiny at the root, larger when deeper.
    assert profile[0] < 0.2
    if 2 in profile:
        assert profile[2] >= profile[0]
